#include "graph/rewrite/rewrite.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "graph/rewrite/fusion_stages.h"
#include "graph/verify/verifier.h"
#include "parallel/thread_pool.h"
#include "telemetry/metrics.h"
#include "tensor/rng.h"

namespace fathom::graph::rewrite {

namespace {

std::string
AttrsSignatureOf(const std::map<std::string, AttrValue>& attrs)
{
    std::ostringstream out;
    for (const auto& [key, value] : attrs) {
        out << key << "=";
        // AttrValue intentionally has no general introspection; probe
        // the variant through its typed accessors.
        try {
            out << "i" << value.AsInt();
            continue;
        } catch (const std::logic_error&) {
        }
        try {
            // Encode the exact bit pattern: streaming the float with
            // default ostream precision made attrs differing below six
            // significant digits produce identical signatures, wrongly
            // merging non-equivalent nodes. This also keeps
            // +0.0f/-0.0f and NaN payloads distinct.
            const float f = value.AsFloat();
            std::uint32_t bits = 0;
            static_assert(sizeof(bits) == sizeof(f));
            std::memcpy(&bits, &f, sizeof(bits));
            out << "f" << bits;
            continue;
        } catch (const std::logic_error&) {
        }
        try {
            out << "b" << value.AsBool();
            continue;
        } catch (const std::logic_error&) {
        }
        try {
            out << "s" << value.AsString();
            continue;
        } catch (const std::logic_error&) {
        }
        try {
            out << "l";
            for (std::int64_t v : value.AsIntList()) {
                out << v << ",";
            }
            continue;
        } catch (const std::logic_error&) {
        }
        out << "?";
    }
    return out.str();
}

std::uint64_t
Fnv1a64(const std::string& s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
HexDigest(std::uint64_t h)
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

std::uint64_t
EdgeKey(const Output& edge)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(edge.node))
            << 32) |
           static_cast<std::uint32_t>(edge.index);
}

}  // namespace

std::string
AttrsSignature(const Node& node)
{
    return AttrsSignatureOf(node.attrs);
}

std::string
RewriteOptions::CacheKey() const
{
    std::string key = "f0c0t0e0i0v0m";
    key[1] = constant_folding ? '1' : '0';
    key[3] = common_subexpression ? '1' : '0';
    key[5] = transpose_folding ? '1' : '0';
    key[7] = elementwise_fusion ? '1' : '0';
    key[9] = inplace ? '1' : '0';
    key[11] = variables_as_constants ? '1' : '0';
    return key + std::to_string(max_passes) + (verify ? "y1" : "y0");
}

// ---------------------------------------------------------------------------
// RewriteState
// ---------------------------------------------------------------------------

RewriteState::RewriteState(Graph& graph, VariableStore& variables,
                           const RewriteOptions& options,
                           std::vector<NodeId> initial_order,
                           const std::vector<NodeId>& protected_roots)
    : graph_(&graph), variables_(&variables), options_(options),
      order_(std::move(initial_order))
{
    live_.reserve(order_.size());
    for (NodeId id : order_) {
        live_.insert(id);
    }
    for (NodeId root : protected_roots) {
        protected_.insert(root);
    }
}

NodeId
RewriteState::Resolve(NodeId id) const
{
    // Replacements are pre-compressed at insertion, so chains are
    // short; the loop guards against patterns stacking replacements.
    std::size_t hops = 0;
    auto it = replacements_.find(id);
    while (it != replacements_.end()) {
        id = it->second;
        it = replacements_.find(id);
        if (++hops > replacements_.size()) {
            throw std::logic_error("RewriteState::Resolve: replacement cycle");
        }
    }
    return id;
}

const OpDef*
RewriteState::Lookup(const std::string& op_type) const
{
    const OpRegistry& registry = OpRegistry::Global();
    return registry.Contains(op_type) ? &registry.Lookup(op_type) : nullptr;
}

bool
RewriteState::IsPure(const Node& node) const
{
    const OpDef* def = Lookup(node.op_type);
    return def != nullptr && !def->stateful && !IsPinned(node.op_type);
}

bool
RewriteState::IsPinned(const std::string& op_type)
{
    return op_type == "Placeholder" || op_type == "Variable" ||
           op_type == "Assign" || op_type == "NoOp" ||
           op_type.rfind("Apply", 0) == 0;
}

bool
RewriteState::IsViewOp(const std::string& op_type)
{
    // Kernels whose output tensor shares the input's buffer: mutating
    // their output would mutate a value the rewrite cannot see dying.
    return op_type == "Identity" || op_type == "StopGradient" ||
           op_type == "Reshape" || op_type == "ReshapeLike";
}

const std::vector<Tensor>*
RewriteState::FoldedValue(NodeId id) const
{
    auto it = folded_.find(id);
    return it == folded_.end() ? nullptr : &it->second;
}

void
RewriteState::RebuildConsumers() const
{
    edge_uses_.clear();
    data_consumers_.clear();
    sole_consumer_.clear();
    control_consumers_.clear();
    for (NodeId id : order_) {
        const Node& node = graph_->node(id);
        for (const Output& in : node.inputs) {
            const Output re = ResolveEdge(in);
            ++edge_uses_[EdgeKey(re)];
            auto [it, inserted] = data_consumers_.emplace(re.node, 1);
            if (!inserted) {
                ++it->second;
            }
            auto [sc, fresh] = sole_consumer_.emplace(re.node, id);
            if (!fresh && sc->second != id) {
                sc->second = -1;  // more than one distinct consumer.
            }
        }
        for (NodeId c : node.control_inputs) {
            ++control_consumers_[Resolve(c)];
        }
    }
    consumers_dirty_ = false;
}

int
RewriteState::EdgeUseCount(const Output& edge) const
{
    if (consumers_dirty_) {
        RebuildConsumers();
    }
    auto it = edge_uses_.find(EdgeKey(edge));
    return it == edge_uses_.end() ? 0 : it->second;
}

int
RewriteState::NumDataConsumers(NodeId producer) const
{
    if (consumers_dirty_) {
        RebuildConsumers();
    }
    auto it = data_consumers_.find(producer);
    return it == data_consumers_.end() ? 0 : it->second;
}

NodeId
RewriteState::SoleDataConsumer(NodeId producer) const
{
    if (consumers_dirty_) {
        RebuildConsumers();
    }
    auto uses = data_consumers_.find(producer);
    if (uses == data_consumers_.end() || uses->second != 1) {
        return -1;
    }
    auto it = sole_consumer_.find(producer);
    return it == sole_consumer_.end() ? -1 : it->second;
}

int
RewriteState::NumControlConsumers(NodeId id) const
{
    if (consumers_dirty_) {
        RebuildConsumers();
    }
    auto it = control_consumers_.find(id);
    return it == control_consumers_.end() ? 0 : it->second;
}

void
RewriteState::RemoveFromOrder(NodeId id)
{
    auto it = std::find(order_.begin(), order_.end(), id);
    if (it != order_.end()) {
        order_.erase(it);
    }
    live_.erase(id);
}

NodeId
RewriteState::AddOrReuseNode(const std::string& stem,
                             const std::string& op_type,
                             std::vector<Output> inputs,
                             std::map<std::string, AttrValue> attrs,
                             int num_outputs)
{
    std::ostringstream sig;
    sig << op_type << "|" << num_outputs << "|";
    for (const Output& in : inputs) {
        sig << in.node << ":" << in.index << ",";
    }
    sig << "|" << AttrsSignatureOf(attrs);
    const std::string name =
        "__rw/" + stem + "/" + HexDigest(Fnv1a64(sig.str()));

    for (int salt = 0;; ++salt) {
        const std::string candidate =
            salt == 0 ? name : name + "." + std::to_string(salt);
        const NodeId found = graph_->FindNode(candidate);
        if (found < 0) {
            return graph_->AddNode(candidate, op_type, std::move(inputs),
                                   std::move(attrs), num_outputs);
        }
        const Node& existing = graph_->node(found);
        if (existing.op_type == op_type && existing.inputs == inputs &&
            existing.num_outputs == num_outputs &&
            AttrsSignatureOf(existing.attrs) == AttrsSignatureOf(attrs)) {
            return found;  // deterministic replan converged on this node.
        }
        // Hash collision with different content: salt and retry.
    }
}

void
RewriteState::ReplaceNode(NodeId old_node, NodeId with)
{
    const NodeId target = Resolve(with);
    if (target == old_node) {
        return;  // self-replacement is a no-op.
    }
    replacements_[old_node] = target;
    if (protected_.count(old_node) > 0) {
        protected_.insert(target);
    }
    if (!IsLive(target) && !IsFoldedConstant(target)) {
        // A freshly created node: it takes old_node's schedule slot
        // (its inputs all precede that slot, so the order stays
        // topological and barrier positions are unchanged).
        auto it = std::find(order_.begin(), order_.end(), old_node);
        if (it == order_.end()) {
            throw std::logic_error(
                "RewriteState::ReplaceNode: anchor not live");
        }
        *it = target;
        live_.insert(target);
        live_.erase(old_node);
    } else {
        RemoveFromOrder(old_node);
    }
    InvalidateConsumers();
}

void
RewriteState::FoldNode(NodeId id, std::vector<Tensor> outputs)
{
    folded_[id] = std::move(outputs);
    RemoveFromOrder(id);
    InvalidateConsumers();
}

void
RewriteState::FuseChain(const std::vector<NodeId>& members, NodeId fused)
{
    const NodeId tail = members.back();
    auto it = std::find(order_.begin(), order_.end(), tail);
    if (it == order_.end()) {
        throw std::logic_error("RewriteState::FuseChain: tail not live");
    }
    *it = fused;
    live_.insert(fused);
    for (NodeId m : members) {
        replacements_[m] = fused;
        if (protected_.count(m) > 0) {
            protected_.insert(fused);
        }
        if (m != tail) {
            RemoveFromOrder(m);
        } else {
            live_.erase(m);
        }
    }
    InvalidateConsumers();
}

int
RewriteState::RunDeadCodeElimination()
{
    // Rewrites orphan nodes (an absorbed Transpose, a CSE'd duplicate's
    // private Const) rather than deleting them; sweep the order for
    // pure nodes nothing reads or orders on. The original order only
    // contains root-reachable nodes, so on an untouched graph this
    // removes nothing.
    int removed = 0;
    for (;;) {
        std::vector<NodeId> victims;
        for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
            const NodeId id = *it;
            if (IsProtected(id)) {
                continue;
            }
            const Node& node = graph_->node(id);
            if (!IsPure(node)) {
                continue;
            }
            if (NumDataConsumers(id) > 0 || NumControlConsumers(id) > 0) {
                continue;
            }
            victims.push_back(id);
        }
        if (victims.empty()) {
            return removed;
        }
        for (NodeId v : victims) {
            RemoveFromOrder(v);
        }
        removed += static_cast<int>(victims.size());
        InvalidateConsumers();
    }
}

int
RewriteState::MarkInPlaceSteps(std::vector<char>* inplace) const
{
    inplace->assign(order_.size(), 0);
    int marked = 0;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        const Node& node = graph_->node(order_[i]);
        const OpDef* def = Lookup(node.op_type);
        if (def == nullptr || !def->supports_inplace ||
            node.inputs.empty()) {
            continue;
        }
        const Output e0 = ResolveEdge(node.inputs[0]);
        if (e0.index != 0) {
            continue;  // replacement maps are per-node, index 0 only.
        }
        const NodeId p = e0.node;
        // The producer's output must provably die at this consumer:
        // a live, pure, single-output, unfetched step whose only
        // reading edge in the whole plan is this node's input 0, and
        // whose kernel allocated a private buffer (not a view). The
        // executor additionally checks the runtime refcount, which
        // rejects folded/prebound values and cross-step sharing the
        // static proof cannot see.
        if (!IsLive(p) || IsProtected(p)) {
            continue;
        }
        const Node& pn = graph_->node(p);
        if (pn.num_outputs != 1 || IsPinned(pn.op_type) ||
            pn.op_type == "Const" || IsViewOp(pn.op_type)) {
            continue;
        }
        const OpDef* pdef = Lookup(pn.op_type);
        if (pdef == nullptr || pdef->stateful) {
            continue;
        }
        if (EdgeUseCount(e0) != 1) {
            continue;
        }
        (*inplace)[i] = 1;
        ++marked;
    }
    return marked;
}

RewriteResult
RewriteState::Finalize(std::map<std::string, int> fire_counts, int passes,
                       bool clipped)
{
    RewriteResult result;
    result.order = std::move(order_);
    result.folded = std::move(folded_);
    result.fire_counts = std::move(fire_counts);
    result.passes = passes;
    result.clipped = clipped;
    result.replacements.reserve(replacements_.size());
    for (const auto& [id, unused] : replacements_) {
        (void)unused;
        result.replacements[id] = Resolve(id);
    }
    return result;
}

// ---------------------------------------------------------------------------
// Production patterns
// ---------------------------------------------------------------------------

namespace {

/**
 * Compile-time constant folding: a pure node whose inputs are all
 * folded constants is evaluated once, through its real registered
 * kernel — identical arithmetic (including NaN/Inf propagation) to
 * runtime execution — and its outputs enter the folded-value table.
 * Const nodes (and Variables, in variables_as_constants mode) are the
 * folding leaves.
 */
class ConstantFoldingPattern : public Pattern {
  public:
    std::string name() const override { return "constant_folding"; }

    bool
    Apply(RewriteState& state, NodeId anchor) override
    {
        const Node& node = state.graph().node(anchor);
        if (node.num_outputs <= 0) {
            return false;
        }
        if (node.op_type == "Const") {
            state.FoldNode(anchor,
                           {state.variables().Get(
                               node.attr("var_name").AsString())});
            return true;
        }
        if (node.op_type == "Variable" &&
            state.options().variables_as_constants) {
            // Freeze mode: the caller snapshotted variables into the
            // store, so a Variable read is a constant (no Clone — the
            // snapshot is immutable by construction).
            state.FoldNode(anchor,
                           {state.variables().Get(
                               node.attr("var_name").AsString())});
            return true;
        }
        if (!state.IsPure(node) || !node.control_inputs.empty()) {
            return false;
        }
        std::vector<Tensor> inputs;
        inputs.reserve(node.inputs.size());
        for (const Output& in : node.inputs) {
            const Output re = state.ResolveEdge(in);
            const std::vector<Tensor>* value = state.FoldedValue(re.node);
            if (value == nullptr ||
                static_cast<std::size_t>(re.index) >= value->size()) {
                return false;
            }
            inputs.push_back((*value)[static_cast<std::size_t>(re.index)]);
        }
        const OpDef* def = state.Lookup(node.op_type);
        parallel::ThreadPool fold_pool(1);
        Rng fold_rng(0);  // never drawn from: stateful ops are not pure.
        OpContext ctx(node, &inputs, fold_pool, fold_rng,
                      state.variables());
        def->kernel(ctx);
        state.FoldNode(anchor, std::move(ctx.outputs()));
        return true;
    }
};

/**
 * Common-subexpression elimination: pure nodes with identical op type,
 * attrs, resolved data inputs, and resolved control inputs merge into
 * the first occurrence. Control inputs are part of the signature — two
 * otherwise-identical nodes ordered after different events are NOT the
 * same computation (merging them would silently drop an ordering
 * constraint).
 */
class CsePattern : public Pattern {
  public:
    std::string name() const override { return "common_subexpression"; }

    void
    BeginSweep(RewriteState& state) override
    {
        (void)state;
        seen_.clear();
    }

    bool
    Apply(RewriteState& state, NodeId anchor) override
    {
        const Node& node = state.graph().node(anchor);
        if (!state.IsPure(node)) {
            return false;
        }
        std::ostringstream sig;
        sig << node.op_type << "|" << AttrsSignature(node) << "|";
        for (const Output& in : node.inputs) {
            const Output re = state.ResolveEdge(in);
            sig << re.node << ":" << re.index << ",";
        }
        sig << "|";
        std::vector<NodeId> ctrl;
        ctrl.reserve(node.control_inputs.size());
        for (NodeId c : node.control_inputs) {
            ctrl.push_back(state.Resolve(c));
        }
        std::sort(ctrl.begin(), ctrl.end());
        ctrl.erase(std::unique(ctrl.begin(), ctrl.end()), ctrl.end());
        for (NodeId c : ctrl) {
            sig << c << ",";
        }
        auto [it, inserted] = seen_.emplace(sig.str(), anchor);
        if (inserted || it->second == anchor ||
            !state.IsLive(it->second)) {
            return false;
        }
        state.ReplaceNode(anchor, it->second);
        return true;
    }

  private:
    std::unordered_map<std::string, NodeId> seen_;
};

/**
 * Transpose/Reshape folding:
 *  - a rank-2 Transpose feeding a MatMul operand becomes the operand's
 *    transpose flag (the GEMM engine reads transposition as a stride
 *    swap, so accumulation order and result bits are unchanged);
 *  - Transpose-of-Transpose composes into one permutation;
 *  - an identity-permutation Transpose is elided entirely;
 *  - Reshape-of-Reshape collapses to the outer Reshape (the element
 *    count is preserved by both, so a -1 wildcard resolves the same).
 */
class TransposeFoldingPattern : public Pattern {
  public:
    std::string name() const override { return "transpose_folding"; }

    bool
    Apply(RewriteState& state, NodeId anchor) override
    {
        const Node& node = state.graph().node(anchor);
        if (node.op_type == "MatMul") {
            return FoldIntoMatMul(state, anchor);
        }
        if (node.op_type == "Transpose") {
            return SimplifyTranspose(state, anchor);
        }
        if (node.op_type == "Reshape") {
            return ComposeReshape(state, anchor);
        }
        return false;
    }

  private:
    static bool
    IsSwapPerm(const std::vector<std::int64_t>& perm)
    {
        return perm.size() == 2 && perm[0] == 1 && perm[1] == 0;
    }

    static bool
    IsIdentityPerm(const std::vector<std::int64_t>& perm)
    {
        for (std::size_t i = 0; i < perm.size(); ++i) {
            if (perm[i] != static_cast<std::int64_t>(i)) {
                return false;
            }
        }
        return true;
    }

    /** Copies @p from's control deps onto @p to (deduplicated). */
    static void
    InheritControl(RewriteState& state, const Node& from, NodeId to)
    {
        Node& dst = state.graph().mutable_node(to);
        for (NodeId c : from.control_inputs) {
            const NodeId rc = state.Resolve(c);
            if (std::find(dst.control_inputs.begin(),
                          dst.control_inputs.end(),
                          rc) == dst.control_inputs.end()) {
                state.graph().AddControlEdge(rc, to);
            }
        }
    }

    bool
    FoldIntoMatMul(RewriteState& state, NodeId anchor)
    {
        const Node& node = state.graph().node(anchor);
        if (node.inputs.size() != 2) {
            return false;
        }
        bool flags[2] = {node.attr_bool("transpose_a", false),
                         node.attr_bool("transpose_b", false)};
        Output operands[2] = {state.ResolveEdge(node.inputs[0]),
                              state.ResolveEdge(node.inputs[1])};
        bool absorbed = false;
        for (int side = 0; side < 2; ++side) {
            const Output& e = operands[side];
            if (!state.IsLive(e.node) || e.index != 0) {
                continue;
            }
            const Node& p = state.graph().node(e.node);
            if (p.op_type != "Transpose" ||
                !IsSwapPerm(p.attr("perm").AsIntList())) {
                continue;
            }
            operands[side] = state.ResolveEdge(p.inputs[0]);
            flags[side] = !flags[side];
            absorbed = true;
        }
        if (!absorbed) {
            return false;
        }
        const NodeId merged = state.AddOrReuseNode(
            "matmul@" + std::to_string(anchor), "MatMul",
            {operands[0], operands[1]},
            {{"transpose_a", flags[0]}, {"transpose_b", flags[1]}});
        InheritControl(state, node, merged);
        state.ReplaceNode(anchor, merged);
        return true;
    }

    bool
    SimplifyTranspose(RewriteState& state, NodeId anchor)
    {
        const Node& node = state.graph().node(anchor);
        const std::vector<std::int64_t>& perm = node.attr("perm").AsIntList();
        const Output e = state.ResolveEdge(node.inputs[0]);
        if (IsIdentityPerm(perm)) {
            // Elide: consumers read the input directly. Needs index-0
            // producers (replacements preserve the edge index) and no
            // control deps to lose.
            if (e.index != 0 || !node.control_inputs.empty()) {
                return false;
            }
            state.ReplaceNode(anchor, e.node);
            return true;
        }
        if (!state.IsLive(e.node) || e.index != 0) {
            return false;
        }
        const Node& p = state.graph().node(e.node);
        if (p.op_type != "Transpose") {
            return false;
        }
        const std::vector<std::int64_t>& inner = p.attr("perm").AsIntList();
        if (inner.size() != perm.size()) {
            return false;
        }
        std::vector<std::int64_t> composed(perm.size());
        for (std::size_t i = 0; i < perm.size(); ++i) {
            composed[i] = inner[static_cast<std::size_t>(perm[i])];
        }
        const NodeId merged = state.AddOrReuseNode(
            "transpose@" + std::to_string(anchor), "Transpose",
            {state.ResolveEdge(p.inputs[0])}, {{"perm", composed}});
        InheritControl(state, node, merged);
        state.ReplaceNode(anchor, merged);
        return true;
    }

    bool
    ComposeReshape(RewriteState& state, NodeId anchor)
    {
        const Node& node = state.graph().node(anchor);
        const Output e = state.ResolveEdge(node.inputs[0]);
        if (!state.IsLive(e.node) || e.index != 0) {
            return false;
        }
        const Node& p = state.graph().node(e.node);
        if (p.op_type != "Reshape") {
            return false;
        }
        // Both reshapes preserve the element count, so the outer shape
        // attr (-1 wildcard included) resolves identically against the
        // inner reshape's own input.
        const NodeId merged = state.AddOrReuseNode(
            "reshape@" + std::to_string(anchor), "Reshape",
            {state.ResolveEdge(p.inputs[0])},
            {{"shape", node.attr("shape").AsIntList()}});
        InheritControl(state, node, merged);
        state.ReplaceNode(anchor, merged);
        return true;
    }
};

/**
 * Elementwise-chain fusion: a maximal chain of fusable elementwise ops
 * where every interior value has exactly one reader collapses into one
 * FusedElementwise node that replays the identical scalar sequence in
 * a single pass over memory. Interior members must be unprotected,
 * control-free, single-output pure ops; the tail may be fetched (the
 * fused node replaces it value-identically).
 */
class ElementwiseFusionPattern : public Pattern {
  public:
    std::string name() const override { return "elementwise_fusion"; }

    bool
    Apply(RewriteState& state, NodeId anchor) override
    {
        if (!IsFusable(state, anchor)) {
            return false;
        }
        // Head check: no live fusable producer may absorb the anchor.
        const Node& node = state.graph().node(anchor);
        for (const Output& in : node.inputs) {
            const Output re = state.ResolveEdge(in);
            if (state.IsLive(re.node) && CanLink(state, re.node, anchor)) {
                return false;  // the true head's sweep will fuse us.
            }
        }

        std::vector<NodeId> members{anchor};
        while (true) {
            const NodeId next = state.SoleDataConsumer(members.back());
            if (next < 0 || !CanLink(state, members.back(), next)) {
                break;
            }
            members.push_back(next);
        }
        if (members.size() < 2) {
            return false;
        }

        // Stage encoding: "ops" names, per-stage kind (0 unary,
        // 1 binary with the chain value on the lhs, 2 on the rhs),
        // per-stage float params as exact-bit float attrs, side
        // operands appended as extra inputs in stage order.
        const FusionStageRegistry& stages = FusionStageRegistry::Global();
        std::string ops;
        std::vector<std::int64_t> kinds;
        std::map<std::string, AttrValue> attrs;
        std::vector<Output> inputs;
        inputs.push_back(
            state.ResolveEdge(state.graph().node(anchor).inputs[0]));
        for (std::size_t i = 0; i < members.size(); ++i) {
            const Node& m = state.graph().node(members[i]);
            const FusionStage* stage = stages.Find(m.op_type);
            if (!ops.empty()) {
                ops += ",";
            }
            ops += m.op_type;
            if (stage->arity == 1) {
                kinds.push_back(0);
            } else if (i == 0) {
                kinds.push_back(1);  // head: chain = input 0 by choice.
                inputs.push_back(state.ResolveEdge(m.inputs[1]));
            } else {
                const Output prev = {members[i - 1], 0};
                if (state.ResolveEdge(m.inputs[0]) == prev) {
                    kinds.push_back(1);
                    inputs.push_back(state.ResolveEdge(m.inputs[1]));
                } else {
                    kinds.push_back(2);
                    inputs.push_back(state.ResolveEdge(m.inputs[0]));
                }
            }
            for (std::size_t j = 0; j < stage->param_attrs.size(); ++j) {
                attrs.emplace("p" + std::to_string(i) + "_" +
                                  std::to_string(j),
                              m.attr(stage->param_attrs[j]).AsFloat());
            }
        }
        attrs.emplace("ops", ops);
        attrs.emplace("kinds", kinds);

        const NodeId tail = members.back();
        const NodeId fused = state.AddOrReuseNode(
            "fused@" + std::to_string(tail), "FusedElementwise",
            std::move(inputs), std::move(attrs));
        // The fused node replaces the tail, so it inherits the tail's
        // ordering constraints (interiors are control-free by check).
        {
            const Node& tn = state.graph().node(tail);
            Node& dst = state.graph().mutable_node(fused);
            for (NodeId c : tn.control_inputs) {
                const NodeId rc = state.Resolve(c);
                if (std::find(dst.control_inputs.begin(),
                              dst.control_inputs.end(),
                              rc) == dst.control_inputs.end()) {
                    state.graph().AddControlEdge(rc, fused);
                }
            }
        }
        state.FuseChain(members, fused);
        return true;
    }

  private:
    /** Basic stage eligibility (either chain position). */
    static bool
    IsFusable(RewriteState& state, NodeId id)
    {
        if (!state.IsLive(id)) {
            return false;
        }
        const Node& node = state.graph().node(id);
        if (node.num_outputs != 1 || !state.IsPure(node)) {
            return false;
        }
        const FusionStage* stage =
            FusionStageRegistry::Global().Find(node.op_type);
        if (stage == nullptr) {
            return false;
        }
        return node.inputs.size() == static_cast<std::size_t>(stage->arity);
    }

    /**
     * @return true if @p m may become a chain interior feeding @p s:
     * m's value must die at s (sole reading edge), m must carry no
     * control deps or protection, and s must consume m at exactly one
     * operand slot.
     */
    static bool
    CanLink(RewriteState& state, NodeId m, NodeId s)
    {
        if (!IsFusable(state, m) || !IsFusable(state, s) ||
            state.IsProtected(m)) {
            return false;
        }
        const Node& mn = state.graph().node(m);
        if (!mn.control_inputs.empty()) {
            return false;
        }
        if (state.SoleDataConsumer(m) != s ||
            state.EdgeUseCount({m, 0}) != 1) {
            return false;
        }
        const Node& sn = state.graph().node(s);
        int reads = 0;
        for (const Output& in : sn.inputs) {
            if (state.ResolveEdge(in) == Output{m, 0}) {
                ++reads;
            }
        }
        return reads == 1;
    }
};

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

RewriteResult
RunPatterns(Graph& graph, const std::vector<Output>& fetches,
            const std::vector<NodeId>& targets, VariableStore& variables,
            const std::vector<Pattern*>& patterns,
            const RewriteOptions& options)
{
    std::vector<NodeId> roots;
    roots.reserve(fetches.size() + targets.size());
    for (const Output& f : fetches) {
        roots.push_back(f.node);
    }
    for (NodeId t : targets) {
        roots.push_back(t);
    }

    RewriteState state(graph, variables, options,
                       graph.TopologicalOrder(roots), roots);
    std::map<std::string, int> fires;
    for (const Pattern* p : patterns) {
        fires[p->name()] = 0;  // report zeros for enabled patterns.
    }

    int passes = 0;
    bool clipped = false;
    while (true) {
        if (passes >= options.max_passes) {
            clipped = true;
            break;
        }
        ++passes;
        int fired = 0;
        for (Pattern* p : patterns) {
            p->BeginSweep(state);
            // Snapshot: patterns edit the order mid-sweep.
            const std::vector<NodeId> anchors = state.order();
            int pattern_fires = 0;
            for (NodeId anchor : anchors) {
                if (state.IsLive(anchor) && p->Apply(state, anchor)) {
                    ++pattern_fires;
                }
            }
            fires[p->name()] += pattern_fires;
            fired += pattern_fires;
        }
        const int removed = state.RunDeadCodeElimination();
        if (removed > 0) {
            fires["dce"] += removed;
        }
        if (fired + removed == 0) {
            break;
        }
    }

    std::vector<char> inplace;
    int inplace_marks = 0;
    if (options.inplace) {
        inplace_marks = state.MarkInPlaceSteps(&inplace);
        fires["inplace"] += inplace_marks;
    } else {
        inplace.assign(state.order().size(), 0);
    }

    RewriteResult result = state.Finalize(std::move(fires), passes, clipped);
    result.inplace = std::move(inplace);

    // Post-condition on the fixed point: the produced order must verify
    // (structure, type inference without feed seeds, and the aliasing/
    // determinism lints). Catches a broken pattern before a single
    // kernel runs on its output.
    if (options.verify) {
        verify::VerifyOptions vopts;
        vopts.variables = &variables;
        verify::PlanFacts facts;
        facts.order = &result.order;
        facts.replacements = &result.replacements;
        facts.folded = &result.folded;
        facts.inplace = result.inplace.empty() ? nullptr : &result.inplace;
        verify::VerifyOrThrow(graph, fetches, targets, vopts, &facts);
    }

    if (telemetry::MetricsEnabled()) {
        auto& registry = telemetry::MetricsRegistry::Global();
        registry.GetCounter("rewrite.runs").Add(1);
        registry.GetCounter("rewrite.passes").Add(
            static_cast<std::uint64_t>(result.passes));
        if (result.clipped) {
            registry.GetCounter("rewrite.fixed_point_clipped").Add(1);
        }
        for (const auto& [name, count] : result.fire_counts) {
            if (count > 0) {
                registry.GetCounter("rewrite.fire." + name)
                    .Add(static_cast<std::uint64_t>(count));
            }
        }
    }
    return result;
}

RewriteResult
Rewrite(Graph& graph, const std::vector<Output>& fetches,
        const std::vector<NodeId>& targets, VariableStore& variables,
        const RewriteOptions& options)
{
    ConstantFoldingPattern folding;
    CsePattern cse;
    TransposeFoldingPattern transpose;
    ElementwiseFusionPattern fusion;
    std::vector<Pattern*> patterns;
    if (options.constant_folding) {
        patterns.push_back(&folding);
    }
    if (options.common_subexpression) {
        patterns.push_back(&cse);
    }
    if (options.transpose_folding) {
        patterns.push_back(&transpose);
    }
    if (options.elementwise_fusion) {
        patterns.push_back(&fusion);
    }
    return RunPatterns(graph, fetches, targets, variables, patterns,
                       options);
}

}  // namespace fathom::graph::rewrite
