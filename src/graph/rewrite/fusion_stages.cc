#include "graph/rewrite/fusion_stages.h"

#include <stdexcept>

namespace fathom::graph::rewrite {

FusionStageRegistry&
FusionStageRegistry::Global()
{
    static FusionStageRegistry* registry = new FusionStageRegistry();
    return *registry;
}

void
FusionStageRegistry::Register(const std::string& op_type, FusionStage stage)
{
    if (stage.arity == 1 ? stage.unary == nullptr
                         : (stage.arity != 2 || stage.binary == nullptr)) {
        throw std::logic_error("FusionStageRegistry: stage '" + op_type +
                               "' has no scalar function for its arity");
    }
    if (!stages_.emplace(op_type, std::move(stage)).second) {
        throw std::logic_error("FusionStageRegistry: duplicate '" + op_type +
                               "'");
    }
}

const FusionStage*
FusionStageRegistry::Find(const std::string& op_type) const
{
    auto it = stages_.find(op_type);
    return it == stages_.end() ? nullptr : &it->second;
}

std::vector<std::string>
FusionStageRegistry::Names() const
{
    std::vector<std::string> names;
    names.reserve(stages_.size());
    for (const auto& [name, stage] : stages_) {
        names.push_back(name);
    }
    return names;
}

}  // namespace fathom::graph::rewrite
