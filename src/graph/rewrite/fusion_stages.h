/**
 * @file
 * Registry of fusable elementwise stages.
 *
 * The elementwise-chain fusion pattern and the FusedElementwise kernel
 * must agree exactly on (a) which op types are fusable and (b) the
 * scalar function each stage applies — the fused kernel replays the
 * same per-element scalar sequence the unfused ops would have run, so
 * fused results are bit-identical. Registering the scalar function
 * once, here, and routing both the standalone op kernel and the fused
 * kernel through it makes that a structural property instead of a
 * convention.
 *
 * This registry lives in the graph layer (not ops) because the fusion
 * pattern in src/graph/rewrite must consult it and fathom_ops already
 * depends on fathom_graph; ops register their stages alongside their
 * kernels in RegisterStandardOps().
 */
#ifndef FATHOM_GRAPH_REWRITE_FUSION_STAGES_H
#define FATHOM_GRAPH_REWRITE_FUSION_STAGES_H

#include <map>
#include <string>
#include <vector>

namespace fathom::graph::rewrite {

/** One fusable elementwise op: scalar function + static parameters. */
struct FusionStage {
    int arity = 1;  ///< 1 (unary) or 2 (binary).

    /** Scalar kernel for unary stages; @p params from param_attrs. */
    float (*unary)(float x, const float* params) = nullptr;

    /** Scalar kernel for binary stages, in (lhs, rhs) node-input order. */
    float (*binary)(float a, float b, const float* params) = nullptr;

    /** Node attrs captured as float params (e.g. {"exponent"}). */
    std::vector<std::string> param_attrs;

    double flops_per_elem = 1.0;  ///< cost-model contribution.
};

/** Process-wide table of fusable op types. */
class FusionStageRegistry {
  public:
    static FusionStageRegistry& Global();

    /** Registers @p op_type; throws std::logic_error on duplicates. */
    void Register(const std::string& op_type, FusionStage stage);

    /** @return the stage, or null if @p op_type is not fusable. */
    const FusionStage* Find(const std::string& op_type) const;

    /** @return all fusable op type names, sorted. */
    std::vector<std::string> Names() const;

  private:
    std::map<std::string, FusionStage> stages_;
};

}  // namespace fathom::graph::rewrite

#endif  // FATHOM_GRAPH_REWRITE_FUSION_STAGES_H
