/**
 * @file
 * Pattern-matching graph rewrite framework.
 *
 * Generalizes the old ad-hoc optimizer passes (runtime/graph_optimizer)
 * into the style of popart's willow/src/patterns and TensorFlow's
 * dataflow rewrites: each rewrite is a Pattern that matches an anchor
 * node, checks its safety conditions, and applies one local graph
 * edit. A fixed-point driver runs the enabled patterns over the live
 * execution order — in deterministic topological order — until no
 * pattern fires.
 *
 * Invariants every pattern must preserve (the repo's core contract):
 *
 *  - **Bit identity.** Fetched values, variables, and traces must be
 *    bitwise unchanged by any rewrite, at any thread count. Folding
 *    runs the real registered kernel (never shortcut arithmetic, so
 *    NaN/Inf semantics survive); fusion applies the exact per-element
 *    scalar sequence of the fused ops; transpose folding relies on the
 *    GEMM engine treating transposition as a pure stride swap.
 *  - **Safety classes.** A pattern must never eliminate or merge a
 *    node that currently produces a fetch/target value (IsProtected),
 *    a stateful/barrier op, or a pinned op (Placeholder, Variable,
 *    Assign, NoOp, Apply*). Replacing a protected node with a
 *    value-identical equivalent is allowed — fetch resolution follows
 *    the replacement map.
 *  - **Append-only graph.** Nodes are never removed from the Graph;
 *    rewrites produce a replacement map plus a pruned execution order.
 *    New nodes use content-addressed "__rw/..." names so repeated
 *    planning converges to the same nodes instead of growing the graph.
 *  - **Determinism.** No iteration over unordered containers decides
 *    an edit. The same graph + roots + options yields the same result
 *    on every run and at any inter-op width.
 *
 * The four production patterns (constant folding, CSE, transpose /
 * reshape folding into MatMul flags, elementwise-chain fusion) live in
 * rewrite.cc; the in-place marking stage runs after the fixed point
 * over the final order. Each has an enable knob in RewriteOptions and
 * reports a fire count both in RewriteResult and to the telemetry
 * registry ("rewrite.fire.<name>").
 */
#ifndef FATHOM_GRAPH_REWRITE_REWRITE_H
#define FATHOM_GRAPH_REWRITE_REWRITE_H

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "graph/op_registry.h"

namespace fathom::graph::rewrite {

/** Per-pattern enable knobs. All production patterns default on. */
struct RewriteOptions {
    bool constant_folding = true;   ///< evaluate all-constant pure ops.
    bool common_subexpression = true;  ///< merge identical pure nodes.
    bool transpose_folding = true;  ///< Transpose/Reshape into MatMul flags.
    bool elementwise_fusion = true;  ///< chains -> one FusedElementwise.
    bool inplace = true;            ///< write into dying input buffers.

    /** Fixed-point guard: hard cap on driver passes (see clipped). */
    int max_passes = 32;

    /**
     * Treat Variable reads as foldable constants (serving freeze mode:
     * weights are snapshotted, so a Variable is a constant). Never set
     * for a training session.
     */
    bool variables_as_constants = false;

    /**
     * Run the static graph verifier as a post-condition on the rewrite
     * fixed point (structure, type inference, aliasing and determinism
     * lints over the produced order); a violation throws. On by
     * default. Session plan build turns this off when it is about to
     * run the stronger feed-seeded, liveness-checking verification on
     * the same plan.
     */
    bool verify = true;

    /** @return a compact cache-key encoding of the knobs. */
    std::string CacheKey() const;
};

/** Result of rewriting one execution plan. */
struct RewriteResult {
    /** Surviving nodes in a valid (original-relative) execution order. */
    std::vector<NodeId> order;

    /**
     * Edge redirection, path-compressed: reading (node, index) must
     * instead read (replacements[node], index) when present. Targets
     * are always live, folded, or source nodes — never themselves
     * replaced.
     */
    std::unordered_map<NodeId, NodeId> replacements;

    /** Outputs of folded nodes, computed at rewrite time. */
    std::unordered_map<NodeId, std::vector<Tensor>> folded;

    /**
     * Parallel to `order`: whether that step's kernel may write its
     * output into its first input's buffer (statically proven to die at
     * this consumer; executors additionally verify the runtime
     * refcount before granting the alias).
     */
    std::vector<char> inplace;

    /** Per-pattern fire counts (also exported as telemetry counters). */
    std::map<std::string, int> fire_counts;

    int passes = 0;        ///< fixed-point passes executed.
    bool clipped = false;  ///< true if max_passes stopped the driver.

    /** @return the node currently producing @p id's value. */
    NodeId Resolve(NodeId id) const
    {
        auto it = replacements.find(id);
        return it == replacements.end() ? id : it->second;
    }
};

class RewriteState;

/**
 * One rewrite rule: match an anchor node, check safety, apply.
 *
 * Apply() is called once per live node per sweep, in execution order;
 * it must either make one value-preserving edit through RewriteState
 * and return true, or leave the state untouched and return false.
 */
class Pattern {
  public:
    virtual ~Pattern() = default;

    /** Stable snake_case name (knob, metrics, and test key). */
    virtual std::string name() const = 0;

    /** Hook called once before each sweep (reset sweep-local caches). */
    virtual void BeginSweep(RewriteState& state) { (void)state; }

    /** @return true if the pattern fired on @p anchor. */
    virtual bool Apply(RewriteState& state, NodeId anchor) = 0;
};

/**
 * The mutable working set a pattern edits: the live execution order,
 * the replacement map, folded values, and consumer-count indexes.
 * Created and finalized by the driver.
 */
class RewriteState {
  public:
    RewriteState(Graph& graph, VariableStore& variables,
                 const RewriteOptions& options,
                 std::vector<NodeId> initial_order,
                 const std::vector<NodeId>& protected_roots);

    Graph& graph() { return *graph_; }
    VariableStore& variables() { return *variables_; }
    const RewriteOptions& options() const { return options_; }

    /** @return the current live execution order. */
    const std::vector<NodeId>& order() const { return order_; }

    bool IsLive(NodeId id) const { return live_.count(id) > 0; }

    /**
     * @return true if @p id currently produces a fetch or target value.
     * Protected nodes may be replaced by value-identical equivalents
     * (the protection follows the replacement) but must never be
     * absorbed as a fusion interior or removed by DCE.
     */
    bool IsProtected(NodeId id) const { return protected_.count(id) > 0; }

    /** Follows the replacement chain to the terminal node. */
    NodeId Resolve(NodeId id) const;
    Output ResolveEdge(const Output& edge) const
    {
        return {Resolve(edge.node), edge.index};
    }

    /** @return the op def, or null if the op type is unregistered. */
    const OpDef* Lookup(const std::string& op_type) const;

    /** Pure = registered, not stateful, not pinned. */
    bool IsPure(const Node& node) const;

    /** @return true for Placeholder/Variable/Assign/NoOp/Apply*. */
    static bool IsPinned(const std::string& op_type);

    /** @return true for kernels whose output shares the input buffer. */
    static bool IsViewOp(const std::string& op_type);

    bool IsFoldedConstant(NodeId id) const { return folded_.count(id) > 0; }
    const std::vector<Tensor>* FoldedValue(NodeId id) const;

    // ---- consumer info (over live nodes' resolved data edges) ----------

    /** @return how many live data edges read output @p edge. */
    int EdgeUseCount(const Output& edge) const;

    /** @return live consumers reading any output of @p producer. */
    int NumDataConsumers(NodeId producer) const;

    /**
     * @return the single live node reading @p producer, or -1 unless
     * producer has exactly one reading edge in the whole live plan.
     */
    NodeId SoleDataConsumer(NodeId producer) const;

    /** @return live nodes naming @p id as a control input. */
    int NumControlConsumers(NodeId id) const;

    // ---- mutations -----------------------------------------------------

    /**
     * Finds or appends a node with a content-addressed "__rw/" name
     * derived from (@p stem, op type, inputs, attrs), so deterministic
     * re-rewrites reuse nodes instead of growing the graph. Inputs must
     * already be resolved by the caller.
     */
    NodeId AddOrReuseNode(const std::string& stem, const std::string& op_type,
                          std::vector<Output> inputs,
                          std::map<std::string, AttrValue> attrs,
                          int num_outputs = 1);

    /**
     * Redirects every read of @p old_node to @p with (value-identical
     * by the caller's proof) and removes @p old_node from the order.
     * If @p with is a new node not yet scheduled, it takes old_node's
     * position in the order.
     */
    void ReplaceNode(NodeId old_node, NodeId with);

    /** Records @p id as folded to @p outputs; drops it from the order. */
    void FoldNode(NodeId id, std::vector<Tensor> outputs);

    /**
     * Replaces a fused chain: every member redirects to @p fused
     * (interiors have no other readers by the caller's proof), and
     * @p fused takes the last member's position in the order.
     */
    void FuseChain(const std::vector<NodeId>& members, NodeId fused);

    // ---- driver interface ----------------------------------------------

    /** Removes rewrite-orphaned pure nodes (no readers) from the order. */
    int RunDeadCodeElimination();

    /** Marks in-place-eligible steps; @return the number marked. */
    int MarkInPlaceSteps(std::vector<char>* inplace) const;

    /** Path-compresses replacements and moves the result out. */
    RewriteResult Finalize(std::map<std::string, int> fire_counts,
                           int passes, bool clipped);

  private:
    void InvalidateConsumers() { consumers_dirty_ = true; }
    void RebuildConsumers() const;
    void RemoveFromOrder(NodeId id);

    Graph* graph_;
    VariableStore* variables_;
    RewriteOptions options_;

    std::vector<NodeId> order_;
    std::unordered_set<NodeId> live_;
    std::unordered_set<NodeId> protected_;
    std::unordered_map<NodeId, NodeId> replacements_;
    std::unordered_map<NodeId, std::vector<Tensor>> folded_;

    // Lazily rebuilt consumer indexes over resolved live edges.
    mutable bool consumers_dirty_ = true;
    mutable std::unordered_map<std::uint64_t, int> edge_uses_;
    mutable std::unordered_map<NodeId, int> data_consumers_;
    mutable std::unordered_map<NodeId, NodeId> sole_consumer_;
    mutable std::unordered_map<NodeId, int> control_consumers_;
};

/** Deterministic serialization of a node's attrs (CSE/content hashing). */
std::string AttrsSignature(const Node& node);

/**
 * Runs @p patterns over the subgraph producing @p fetches/@p targets
 * to a fixed point, then DCE and in-place marking. The custom-pattern
 * entry point exists for tests (e.g. cyclic-bait termination); use
 * Rewrite() for the production set.
 */
RewriteResult RunPatterns(Graph& graph, const std::vector<Output>& fetches,
                          const std::vector<NodeId>& targets,
                          VariableStore& variables,
                          const std::vector<Pattern*>& patterns,
                          const RewriteOptions& options);

/** Runs the production patterns enabled in @p options. */
RewriteResult Rewrite(Graph& graph, const std::vector<Output>& fetches,
                      const std::vector<NodeId>& targets,
                      VariableStore& variables,
                      const RewriteOptions& options = {});

}  // namespace fathom::graph::rewrite

#endif  // FATHOM_GRAPH_REWRITE_REWRITE_H
