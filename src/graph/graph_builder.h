/**
 * @file
 * Typed convenience API for constructing dataflow graphs.
 *
 * GraphBuilder plays the role of TensorFlow's Python frontend: each
 * method appends one primitive operation node and returns the edge
 * (Output) carrying its result. Gradient functions and the layer
 * library both build graphs exclusively through this interface, so op
 * type names and attribute conventions live in exactly one place.
 */
#ifndef FATHOM_GRAPH_GRAPH_BUILDER_H
#define FATHOM_GRAPH_GRAPH_BUILDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/op_registry.h"
#include "tensor/rng.h"

namespace fathom::graph {

/**
 * Builds nodes into a Graph and registers initial values of variables
 * and constants into a VariableStore.
 *
 * Node names are derived from an optional scope stack (PushScope /
 * PopScope) so profiles remain attributable to model structure.
 */
class GraphBuilder {
  public:
    /**
     * @param graph     graph to append to (not owned).
     * @param variables store receiving variable/constant initial values
     *                  (not owned).
     */
    GraphBuilder(Graph* graph, VariableStore* variables);

    Graph& graph() { return *graph_; }
    VariableStore& variables() { return *variables_; }

    /** Pushes a name scope; subsequent nodes get "scope/name" names. */
    void PushScope(const std::string& scope);
    void PopScope();

    // ---- sources -------------------------------------------------------

    /** A named feed point; must be fed at Run() time. */
    Output Placeholder(const std::string& name);

    /** An embedded constant tensor. */
    Output Const(const Tensor& value, const std::string& name = "const");

    /** A scalar float constant. */
    Output ScalarConst(float value, const std::string& name = "scalar");

    /**
     * A persistent trainable parameter, initialized to @p init.
     * @return the read edge. The variable's store key is returned via
     * @p out_var_name if non-null.
     */
    Output Variable(const std::string& name, const Tensor& init,
                    std::string* out_var_name = nullptr);

    // ---- data movement -------------------------------------------------

    Output Identity(Output x, const std::string& name = "identity");
    Output StopGradient(Output x);
    Output Reshape(Output x, const std::vector<std::int64_t>& shape);
    Output Transpose(Output x, const std::vector<std::int64_t>& perm);
    Output Concat(const std::vector<Output>& xs, int axis);
    Output Slice(Output x, const std::vector<std::int64_t>& begin,
                 const std::vector<std::int64_t>& size);
    /** Splits @p x into @p num_splits equal parts along @p axis. */
    std::vector<Output> Split(Output x, int axis, int num_splits);
    Output Gather(Output params, Output indices);
    Output OneHot(Output indices, std::int64_t depth, float on = 1.0f,
                  float off = 0.0f);
    /** @p paddings is flattened [before0, after0, before1, after1, ...]. */
    Output Pad(Output x, const std::vector<std::int64_t>& paddings);
    Output Tile(Output x, const std::vector<std::int64_t>& multiples);
    Output ShapeOp(Output x);

    // ---- elementwise arithmetic ----------------------------------------

    Output Add(Output a, Output b);
    Output Sub(Output a, Output b);
    Output Mul(Output a, Output b);
    Output Div(Output a, Output b);
    Output AddN(const std::vector<Output>& xs);
    Output Neg(Output x);
    Output Exp(Output x);
    Output Log(Output x);
    Output Sqrt(Output x);
    Output Square(Output x);
    Output Pow(Output x, float exponent);
    Output Relu(Output x);
    /** Clamps elementwise to [clip_min, clip_max]. */
    Output ClipByValue(Output x, float clip_min, float clip_max);
    Output Sigmoid(Output x);
    Output Tanh(Output x);

    // ---- matrix / convolution ------------------------------------------

    Output MatMul(Output a, Output b, bool transpose_a = false,
                  bool transpose_b = false);
    Output Conv2D(Output input, Output filter, std::int64_t stride,
                  const std::string& padding);
    Output MaxPool(Output input, std::int64_t window, std::int64_t stride,
                   const std::string& padding);
    Output AvgPool(Output input, std::int64_t window, std::int64_t stride,
                   const std::string& padding);
    Output Lrn(Output input, std::int64_t depth_radius, float bias,
               float alpha, float beta);

    /**
     * Batch normalization with batch statistics.
     * @return {y, mean, inv_std} edges.
     */
    std::vector<Output> BatchNorm(Output x, Output gamma, Output beta,
                                  float epsilon = 1e-5f);

    // ---- reduction / expansion -----------------------------------------

    Output ReduceSum(Output x, const std::vector<std::int64_t>& axes,
                     bool keep_dims = false);
    Output ReduceMean(Output x, const std::vector<std::int64_t>& axes,
                      bool keep_dims = false);
    Output ReduceMax(Output x, const std::vector<std::int64_t>& axes,
                     bool keep_dims = false);
    Output Softmax(Output logits);
    Output LogSoftmax(Output logits);
    Output ArgMax(Output x);

    // ---- random sampling -----------------------------------------------

    Output RandomNormal(const std::vector<std::int64_t>& shape, float mean,
                        float stddev);
    Output RandomUniform(const std::vector<std::int64_t>& shape, float lo,
                         float hi);
    /** Bernoulli(keep_prob)/keep_prob mask with the shape of @p like. */
    Output DropoutMask(Output like, float keep_prob);

    // ---- losses / optimization -----------------------------------------

    /**
     * Mean softmax cross-entropy between logits [n, c] and int32 labels
     * [n]. @return {mean-loss scalar, d(loss)/d(logits)} edges.
     */
    std::vector<Output> SoftmaxCrossEntropy(Output logits, Output labels);

    /**
     * CTC loss for one sequence: logits [t, c], labels int32 [l].
     * @return {loss scalar, d(loss)/d(logits)} edges.
     */
    std::vector<Output> CtcLoss(Output logits, Output labels,
                                std::int64_t blank);

    /** SGD update: var -= lr * grad. @return the update node id. */
    NodeId ApplyGradientDescent(const std::string& var_name, Output grad,
                                float lr);
    /** Momentum update with coefficient @p momentum. */
    NodeId ApplyMomentum(const std::string& var_name, Output grad, float lr,
                         float momentum);
    /** RMSProp update (decay, epsilon as in the DQN paper). */
    NodeId ApplyRmsProp(const std::string& var_name, Output grad, float lr,
                        float decay, float epsilon);
    /** Adam update (Kingma & Ba defaults). */
    NodeId ApplyAdam(const std::string& var_name, Output grad, float lr,
                     float beta1 = 0.9f, float beta2 = 0.999f,
                     float epsilon = 1e-8f);

    /** Explicit assignment: stores @p value into @p var_name. */
    NodeId Assign(const std::string& var_name, Output value);

    /** A no-op node depending on all of @p deps (like tf.group). */
    NodeId Group(const std::vector<NodeId>& deps,
                 const std::string& name = "group");

    // ---- generic escape hatch ------------------------------------------

    /** Adds an arbitrary node. */
    NodeId AddNode(const std::string& name, const std::string& op_type,
                   std::vector<Output> inputs,
                   std::map<std::string, AttrValue> attrs = {},
                   int num_outputs = 1);

    /** Adds an arbitrary single-output node and returns its edge. */
    Output AddOp(const std::string& name, const std::string& op_type,
                 std::vector<Output> inputs,
                 std::map<std::string, AttrValue> attrs = {});

  private:
    std::string Scoped(const std::string& name) const;

    Graph* graph_;
    VariableStore* variables_;
    std::vector<std::string> scopes_;
    int const_counter_ = 0;
};

/** RAII helper for name scopes. */
class ScopeGuard {
  public:
    ScopeGuard(GraphBuilder& builder, const std::string& scope)
        : builder_(builder)
    {
        builder_.PushScope(scope);
    }
    ~ScopeGuard() { builder_.PopScope(); }
    ScopeGuard(const ScopeGuard&) = delete;
    ScopeGuard& operator=(const ScopeGuard&) = delete;

  private:
    GraphBuilder& builder_;
};

}  // namespace fathom::graph

#endif  // FATHOM_GRAPH_GRAPH_BUILDER_H
