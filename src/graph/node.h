/**
 * @file
 * Nodes and edges of the coarse-grained dataflow graph.
 *
 * A Node is "the smallest schedulable unit" of the runtime, exactly as
 * the paper describes TensorFlow operations. Data edges are
 * (node, output-index) pairs; control edges impose execution order
 * without carrying data (used to sequence variable updates).
 */
#ifndef FATHOM_GRAPH_NODE_H
#define FATHOM_GRAPH_NODE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/attr_value.h"

namespace fathom::graph {

/** Dense node identifier within one Graph. */
using NodeId = std::int32_t;

/** One data-edge endpoint: output @p index of node @p node. */
struct Output {
    NodeId node = -1;
    int index = 0;

    bool
    operator==(const Output& other) const
    {
        return node == other.node && index == other.index;
    }
};

/** One operation instance in a Graph. */
struct Node {
    NodeId id = -1;
    std::string name;     ///< unique within the graph, e.g. "conv1/MatMul".
    std::string op_type;  ///< registered operation type, e.g. "Conv2D".
    std::vector<Output> inputs;
    std::vector<NodeId> control_inputs;  ///< must-run-before dependencies.
    std::map<std::string, AttrValue> attrs;
    int num_outputs = 1;

    /** @return the attr @p key; throws std::out_of_range if missing. */
    const AttrValue&
    attr(const std::string& key) const
    {
        auto it = attrs.find(key);
        if (it == attrs.end()) {
            throw std::out_of_range("Node '" + name + "' (" + op_type +
                                    ") missing attr '" + key + "'");
        }
        return it->second;
    }

    /** @return attr @p key as int, or @p fallback if absent. */
    std::int64_t
    attr_int(const std::string& key, std::int64_t fallback) const
    {
        auto it = attrs.find(key);
        return it == attrs.end() ? fallback : it->second.AsInt();
    }

    /** @return attr @p key as float, or @p fallback if absent. */
    float
    attr_float(const std::string& key, float fallback) const
    {
        auto it = attrs.find(key);
        return it == attrs.end() ? fallback : it->second.AsFloat();
    }

    /** @return attr @p key as bool, or @p fallback if absent. */
    bool
    attr_bool(const std::string& key, bool fallback) const
    {
        auto it = attrs.find(key);
        return it == attrs.end() ? fallback : it->second.AsBool();
    }
};

}  // namespace fathom::graph

#endif  // FATHOM_GRAPH_NODE_H
