/**
 * @file
 * Suite-level harness: runs workloads under the tracer and hands the
 * traces to the analysis tools. This is the top of the library — the
 * piece a benchmark binary or downstream user calls to reproduce the
 * paper's figures.
 */
#ifndef FATHOM_CORE_SUITE_H
#define FATHOM_CORE_SUITE_H

#include <string>
#include <vector>

#include "runtime/tracer.h"
#include "workloads/workload.h"

namespace fathom::core {

/** How much work to run per workload when collecting traces. */
struct SuiteRunOptions {
    int warmup_steps = 1;  ///< steps dropped from every trace.
    int train_steps = 4;   ///< traced training steps.
    int infer_steps = 4;   ///< traced inference steps.
    std::uint64_t seed = 1;
    std::int64_t batch_size = 0;  ///< 0 = model default.
    int threads = 1;              ///< intra-op pool width (Fig. 6 knob).
    int inter_op_threads = 1;     ///< concurrent independent ops per step.
    bool memory_planner = true;   ///< liveness-driven early tensor release.
    bool tracing = true;          ///< per-op tracing (required for analyses).
    bool telemetry = false;       ///< process-wide metrics collection.

    /**
     * Graph rewrites (folding, CSE, transpose folding, fusion,
     * in-place). Off by default HERE — the figure pipelines profile
     * the graph as written, per the paper — while WorkloadConfig
     * defaults rewrites on for throughput runs. Fetched values are
     * bit-identical either way.
     */
    bool graph_rewrites = false;

    /** Per-pattern knobs (effective when graph_rewrites is on). */
    graph::rewrite::RewriteOptions rewrites;

    /**
     * Input-pipeline prefetch depth (0 = inline generation, the
     * historical behavior; >= 1 overlaps batch materialization with
     * step execution). Batches are bit-identical at every depth; see
     * data::InputPipeline.
     */
    int prefetch_depth = 2;

    /** Background batch-producer threads (effective when depth > 0). */
    int producer_threads = 1;
};

/** The traces and metadata captured from one workload. */
struct WorkloadTraces {
    std::string name;
    std::string neuronal_style;
    int num_layers = 0;
    std::string learning_task;
    std::string dataset;
    std::string description;
    std::int64_t parameters = 0;
    int warmup_steps = 0;  ///< steps to skip when analysing the traces.

    runtime::Tracer training;   ///< trace of training steps.
    runtime::Tracer inference;  ///< trace of inference steps.
};

/**
 * Runs one workload under the tracer.
 * @throws std::out_of_range for unknown names.
 */
WorkloadTraces RunAndTrace(const std::string& name,
                           const SuiteRunOptions& options);

/** Runs the whole suite in Table II order. */
std::vector<WorkloadTraces> RunSuite(const SuiteRunOptions& options);

/** Canonical suite order (Table II). */
std::vector<std::string> SuiteNames();

}  // namespace fathom::core

#endif  // FATHOM_CORE_SUITE_H
