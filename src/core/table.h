/**
 * @file
 * Minimal aligned-console-table formatter shared by the benchmark
 * binaries that print the paper's tables and figure series.
 */
#ifndef FATHOM_CORE_TABLE_H
#define FATHOM_CORE_TABLE_H

#include <string>
#include <vector>

namespace fathom::core {

/** Accumulates rows of cells and renders them column-aligned. */
class ConsoleTable {
  public:
    /** Sets the header row. */
    void SetHeader(std::vector<std::string> cells);

    /** Appends one data row. */
    void AddRow(std::vector<std::string> cells);

    /** @return the aligned rendering, with a rule under the header. */
    std::string Render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with @p digits decimal places. */
std::string FormatDouble(double value, int digits = 3);

/** Formats a fraction as a percentage string, e.g. "42.3%". */
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace fathom::core

#endif  // FATHOM_CORE_TABLE_H
