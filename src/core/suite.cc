#include "core/suite.h"

namespace fathom::core {

WorkloadTraces
RunAndTrace(const std::string& name, const SuiteRunOptions& options)
{
    workloads::RegisterAllWorkloads();
    auto workload = workloads::WorkloadRegistry::Global().Create(name);

    workloads::WorkloadConfig config;
    config.seed = options.seed;
    config.batch_size = options.batch_size;
    config.threads = options.threads;
    config.inter_op_threads = options.inter_op_threads;
    config.memory_planner = options.memory_planner;
    config.tracing = options.tracing;
    config.telemetry = options.telemetry;
    config.graph_rewrites = options.graph_rewrites;
    config.rewrites = options.rewrites;
    config.prefetch_depth = options.prefetch_depth;
    config.producer_threads = options.producer_threads;
    workload->Setup(config);

    WorkloadTraces traces;
    traces.name = workload->name();
    traces.neuronal_style = workload->neuronal_style();
    traces.num_layers = workload->num_layers();
    traces.learning_task = workload->learning_task();
    traces.dataset = workload->dataset();
    traces.description = workload->description();
    traces.warmup_steps = options.warmup_steps;

    // Training first (it also warms the variables), then inference.
    workload->session().tracer().Clear();
    workload->RunTraining(options.warmup_steps + options.train_steps);
    traces.training = workload->session().tracer();

    workload->session().tracer().Clear();
    workload->RunInference(options.warmup_steps + options.infer_steps);
    traces.inference = workload->session().tracer();

    traces.parameters = workload->num_parameters();
    return traces;
}

std::vector<WorkloadTraces>
RunSuite(const SuiteRunOptions& options)
{
    std::vector<WorkloadTraces> all;
    for (const auto& name : SuiteNames()) {
        all.push_back(RunAndTrace(name, options));
    }
    return all;
}

std::vector<std::string>
SuiteNames()
{
    workloads::RegisterAllWorkloads();
    return workloads::WorkloadRegistry::Global().Names();
}

}  // namespace fathom::core
