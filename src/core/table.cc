#include "core/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace fathom::core {

void
ConsoleTable::SetHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
ConsoleTable::AddRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
ConsoleTable::Render() const
{
    // Column widths over header and all rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string>& cells) {
        if (cells.size() > widths.size()) {
            widths.resize(cells.size(), 0);
        }
        for (std::size_t i = 0; i < cells.size(); ++i) {
            widths[i] = std::max(widths[i], cells[i].size());
        }
    };
    grow(header_);
    for (const auto& row : rows_) {
        grow(row);
    }

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << std::left << std::setw(static_cast<int>(widths[i]) + 2)
                << cells[i];
        }
        out << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths) {
            total += w + 2;
        }
        out << std::string(total, '-') << "\n";
    }
    for (const auto& row : rows_) {
        emit(row);
    }
    return out.str();
}

std::string
FormatDouble(double value, int digits)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(digits) << value;
    return out.str();
}

std::string
FormatPercent(double fraction, int digits)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(digits) << fraction * 100.0 << "%";
    return out.str();
}

}  // namespace fathom::core
