#include "data/synthetic_mnist.h"

#include <algorithm>
#include <cmath>

namespace fathom::data {

SyntheticMnistDataset::SyntheticMnistDataset(std::uint64_t seed)
    : seed_(seed), rng_(seed)
{
}

namespace {

/** Draws a soft line segment into a kSize x kSize canvas. */
void
DrawStroke(float* pixels, float x0, float y0, float x1, float y1,
           float thickness)
{
    constexpr std::int64_t kSize = SyntheticMnistDataset::kSize;
    const int steps = 40;
    for (int s = 0; s <= steps; ++s) {
        const float t = static_cast<float>(s) / static_cast<float>(steps);
        const float px = x0 + t * (x1 - x0);
        const float py = y0 + t * (y1 - y0);
        const int lo_y = std::max(0, static_cast<int>(py - 3));
        const int hi_y = std::min<int>(kSize - 1, static_cast<int>(py + 3));
        const int lo_x = std::max(0, static_cast<int>(px - 3));
        const int hi_x = std::min<int>(kSize - 1, static_cast<int>(px + 3));
        for (int y = lo_y; y <= hi_y; ++y) {
            for (int x = lo_x; x <= hi_x; ++x) {
                const float dx = static_cast<float>(x) - px;
                const float dy = static_cast<float>(y) - py;
                const float v = std::exp(-(dx * dx + dy * dy) /
                                         (2.0f * thickness * thickness));
                float& p = pixels[y * kSize + x];
                p = std::min(1.0f, p + v);
            }
        }
    }
}

}  // namespace

void
SyntheticMnistDataset::RenderDigit(Rng& rng, float* pixels,
                                   std::int64_t label) const
{
    std::fill(pixels, pixels + kFeatures, 0.0f);
    // Class-conditioned stroke endpoints with per-sample jitter.
    Rng class_rng(0xD16173ull + static_cast<std::uint64_t>(label) * 104729ull);
    const int strokes = 2 + static_cast<int>(label % 2);
    for (int s = 0; s < strokes; ++s) {
        const float x0 = class_rng.UniformFloat(4.0f, 24.0f) +
                         rng.Normal(0.0f, 1.0f);
        const float y0 = class_rng.UniformFloat(4.0f, 24.0f) +
                         rng.Normal(0.0f, 1.0f);
        const float x1 = class_rng.UniformFloat(4.0f, 24.0f) +
                         rng.Normal(0.0f, 1.0f);
        const float y1 = class_rng.UniformFloat(4.0f, 24.0f) +
                         rng.Normal(0.0f, 1.0f);
        DrawStroke(pixels, x0, y0, x1, y1, 1.2f);
    }
}

MnistBatch
SyntheticMnistDataset::Materialize(Rng& rng, std::int64_t n) const
{
    MnistBatch batch;
    batch.images = Tensor(DType::kFloat32, Shape{n, kFeatures});
    batch.labels = Tensor(DType::kInt32, Shape{n});
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t label = rng.UniformInt(10);
        batch.labels.data<std::int32_t>()[i] =
            static_cast<std::int32_t>(label);
        RenderDigit(rng, batch.images.data<float>() + i * kFeatures, label);
    }
    return batch;
}

MnistBatch
SyntheticMnistDataset::NextBatch(std::int64_t n)
{
    return Materialize(rng_, n);
}

MnistBatch
SyntheticMnistDataset::BatchAt(std::uint64_t index, std::int64_t n) const
{
    Rng rng(MixSeed(seed_, index));
    return Materialize(rng, n);
}

}  // namespace fathom::data
