#include "data/synthetic_timit.h"

#include <algorithm>
#include <cmath>

namespace fathom::data {

SyntheticTimitDataset::SyntheticTimitDataset(std::int64_t freq_bins,
                                             std::int64_t num_phonemes,
                                             std::int64_t max_time,
                                             std::uint64_t seed)
    : freq_bins_(freq_bins), num_phonemes_(num_phonemes),
      max_time_(max_time), seed_(seed), rng_(seed)
{
}

Utterance
SyntheticTimitDataset::Materialize(Rng& rng) const
{
    Utterance utt;
    utt.frames = Tensor::Zeros(Shape{max_time_, freq_bins_});
    float* frames = utt.frames.data<float>();

    // Choose a phoneme sequence, then dwell 2-5 frames per phoneme.
    std::int64_t t = 0;
    while (t < max_time_) {
        const std::int32_t phoneme =
            static_cast<std::int32_t>(1 + rng.UniformInt(num_phonemes_));
        const std::int64_t dwell = 2 + rng.UniformInt(4);
        // Phoneme-deterministic formant peaks.
        Rng ph_rng(0xF02337ull + static_cast<std::uint64_t>(phoneme) * 31ull);
        const float f1 = ph_rng.UniformFloat(0.1f, 0.45f) *
                         static_cast<float>(freq_bins_);
        const float f2 = ph_rng.UniformFloat(0.5f, 0.9f) *
                         static_cast<float>(freq_bins_);
        const float width = ph_rng.UniformFloat(1.0f, 2.5f);

        bool emitted_frames = false;
        for (std::int64_t d = 0; d < dwell && t < max_time_; ++d, ++t) {
            for (std::int64_t f = 0; f < freq_bins_; ++f) {
                const float d1 = (static_cast<float>(f) - f1) / width;
                const float d2 = (static_cast<float>(f) - f2) / width;
                frames[t * freq_bins_ + f] =
                    std::exp(-0.5f * d1 * d1) +
                    0.7f * std::exp(-0.5f * d2 * d2) +
                    rng.Normal(0.0f, 0.05f);
            }
            emitted_frames = true;
        }
        if (emitted_frames) {
            // Collapse-repeat convention: the label list carries one
            // entry per phoneme segment.
            if (!utt.labels.empty() && utt.labels.back() == phoneme) {
                continue;  // merged with previous identical segment.
            }
            utt.labels.push_back(phoneme);
        }
    }
    // CTC feasibility: a label sequence with repeated adjacent phonemes
    // needs separator frames; dwell >= 2 guarantees plenty of slack,
    // but trim defensively anyway.
    const std::int64_t max_labels = max_time_ / 2;
    if (static_cast<std::int64_t>(utt.labels.size()) > max_labels) {
        utt.labels.resize(static_cast<std::size_t>(max_labels));
    }
    return utt;
}

Utterance
SyntheticTimitDataset::Next()
{
    return Materialize(rng_);
}

std::vector<Utterance>
SyntheticTimitDataset::BatchAt(std::uint64_t index, std::int64_t n) const
{
    Rng rng(MixSeed(seed_, index));
    std::vector<Utterance> batch;
    batch.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        batch.push_back(Materialize(rng));
    }
    return batch;
}

}  // namespace fathom::data
