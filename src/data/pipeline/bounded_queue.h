/**
 * @file
 * A bounded multi-producer multi-consumer queue with stop/drain
 * semantics — the shared machinery under both the input pipeline's
 * prefetch buffer and the serving runtime's dynamic batcher.
 *
 * The contract mirrors what both clients need:
 *  - Push blocks while full (prefetch backpressure: producers cannot
 *    run unboundedly ahead of the consumer).
 *  - TryPush never blocks and reports full/stopped distinctly (the
 *    serving admission path rejects instead of stalling callers).
 *  - Pop/PopBatch block while empty, and after Stop() keep returning
 *    queued items until the queue is drained — no accepted item is
 *    ever dropped — then report stopped.
 *  - PopBatch implements the dynamic-batching policy: return as soon
 *    as @p max items are available, or when the oldest queued item has
 *    waited @p max_delay, whichever comes first.
 */
#ifndef FATHOM_DATA_PIPELINE_BOUNDED_QUEUE_H
#define FATHOM_DATA_PIPELINE_BOUNDED_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fathom::data {

/** Outcome of a non-blocking push. */
enum class QueuePushResult {
    kOk,       ///< item accepted.
    kFull,     ///< at capacity; caller may retry or reject.
    kStopped,  ///< Stop() was called; the queue accepts nothing more.
};

template <typename T>
class BoundedQueue {
  public:
    using Clock = std::chrono::steady_clock;

    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        if (capacity == 0) {
            throw std::invalid_argument(
                "BoundedQueue: capacity must be > 0");
        }
    }

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /**
     * Blocks until there is room, then enqueues.
     * @return false if the queue was stopped (item not enqueued).
     */
    bool Push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [this] {
            return stopped_ || items_.size() < capacity_;
        });
        if (stopped_) {
            return false;
        }
        items_.push_back(Entry{std::move(item), Clock::now()});
        not_empty_.notify_one();
        return true;
    }

    /** Non-blocking push; see QueuePushResult. */
    QueuePushResult TryPush(T item)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_) {
            return QueuePushResult::kStopped;
        }
        if (items_.size() >= capacity_) {
            return QueuePushResult::kFull;
        }
        items_.push_back(Entry{std::move(item), Clock::now()});
        not_empty_.notify_one();
        return QueuePushResult::kOk;
    }

    /**
     * Blocks until an item is available or the queue is stopped and
     * drained. @return nullopt only when stopped with nothing left.
     */
    std::optional<T> Pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock,
                        [this] { return stopped_ || !items_.empty(); });
        if (items_.empty()) {
            return std::nullopt;
        }
        T value = std::move(items_.front().value);
        items_.pop_front();
        not_full_.notify_one();
        return value;
    }

    /**
     * Pops a batch under the dynamic-batching policy: blocks until any
     * item is queued, then returns once @p max items are available or
     * the *oldest* queued item has waited @p max_delay since enqueue —
     * bounding per-item latency while still coalescing bursts. After
     * Stop(), drains immediately (no deadline wait) batch by batch.
     *
     * @param out cleared and filled with 1..max items, oldest first.
     * @return false only when stopped and fully drained.
     */
    bool PopBatch(std::size_t max, std::chrono::microseconds max_delay,
                  std::vector<T>* out)
    {
        out->clear();
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            not_empty_.wait(
                lock, [this] { return stopped_ || !items_.empty(); });
            if (items_.empty()) {
                return false;  // stopped and drained.
            }
            while (!stopped_ && items_.size() < max) {
                const auto deadline = items_.front().enqueued + max_delay;
                if (Clock::now() >= deadline) {
                    break;
                }
                not_empty_.wait_until(lock, deadline);
                if (items_.empty()) {
                    break;  // raced with another consumer; re-wait.
                }
            }
            if (!items_.empty()) {
                break;
            }
        }
        const std::size_t take = std::min(items_.size(), max);
        out->reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            out->push_back(std::move(items_.front().value));
            items_.pop_front();
        }
        not_full_.notify_all();
        if (!items_.empty()) {
            // Leftovers from a burst: hand them to a sibling consumer
            // instead of waiting for the next push's notify.
            not_empty_.notify_one();
        }
        return true;
    }

    /**
     * Stops the queue: wakes every waiter, rejects all future pushes.
     * Already-queued items remain poppable (drain semantics).
     */
    void Stop()
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopped_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    bool stopped() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stopped_;
    }

    std::size_t capacity() const { return capacity_; }

  private:
    /** Enqueue timestamps drive PopBatch's oldest-item deadline. */
    struct Entry {
        T value;
        Clock::time_point enqueued;
    };

    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<Entry> items_;
    bool stopped_ = false;
};

}  // namespace fathom::data

#endif  // FATHOM_DATA_PIPELINE_BOUNDED_QUEUE_H
