#include "data/pipeline/input_pipeline.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.h"

namespace fathom::data {

namespace {

/** Cached references to the pipeline.* instruments. */
struct PipelineMetrics {
    telemetry::Counter& batches_produced;
    telemetry::Histogram& produce_us;
    telemetry::Histogram& stall_us;
    telemetry::Histogram& queue_depth;

    static PipelineMetrics& Get()
    {
        auto& registry = telemetry::MetricsRegistry::Global();
        static PipelineMetrics m{
            registry.GetCounter("pipeline.batches_produced"),
            registry.GetHistogram("pipeline.produce_us"),
            registry.GetHistogram("pipeline.stall_us"),
            registry.GetHistogram("pipeline.queue_depth"),
        };
        return m;
    }
};

using Clock = std::chrono::steady_clock;

std::uint64_t
MicrosSince(Clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - start)
            .count());
}

}  // namespace

InputPipeline::InputPipeline(BatchFn fn, InputPipelineOptions options)
    : fn_(std::move(fn)), options_(std::move(options)),
      next_step_(options_.start_step), ticket_(options_.start_step)
{
    if (!fn_) {
        throw std::invalid_argument("InputPipeline: null batch function");
    }
    inline_mode_ =
        options_.prefetch_depth <= 0 || options_.producer_threads <= 0;
    if (inline_mode_) {
        return;
    }
    queue_ = std::make_unique<BoundedQueue<Produced>>(
        static_cast<std::size_t>(options_.prefetch_depth));
    const std::size_t producers =
        static_cast<std::size_t>(options_.producer_threads);
    if (options_.tracer) {
        lanes_.reserve(producers);
        for (std::size_t i = 0; i < producers; ++i) {
            lanes_.push_back(options_.tracer->RegisterAuxLane(
                options_.name + "-producer-" + std::to_string(i)));
        }
    }
    producers_.reserve(producers);
    for (std::size_t i = 0; i < producers; ++i) {
        producers_.emplace_back([this, i] { ProducerLoop(i); });
    }
}

InputPipeline::~InputPipeline()
{
    Stop();
}

void
InputPipeline::Stop()
{
    if (queue_) {
        queue_->Stop();
    }
    for (auto& t : producers_) {
        if (t.joinable()) {
            t.join();
        }
    }
    producers_.clear();
}

void
InputPipeline::ProducerLoop(std::size_t producer_index)
{
    runtime::Tracer* tracer = options_.tracer;
    const int lane =
        producer_index < lanes_.size()
            ? lanes_[producer_index]
            : -1;
    for (;;) {
        if (queue_->stopped()) {
            return;
        }
        const std::int64_t step =
            ticket_.fetch_add(1, std::memory_order_relaxed);
        const double trace_start =
            tracer ? tracer->NowSeconds() : 0.0;
        const auto start = Clock::now();
        FeedBatch batch = fn_(step);
        const std::uint64_t elapsed_us = MicrosSince(start);
        if (telemetry::MetricsEnabled()) {
            auto& m = PipelineMetrics::Get();
            m.produce_us.Observe(elapsed_us);
            m.batches_produced.Add(1);
        }
        if (tracer) {
            tracer->RecordAux(lane, "batch " + std::to_string(step),
                              trace_start,
                              static_cast<double>(elapsed_us) * 1e-6);
        }
        // Blocks while the queue is full: backpressure bounds how far
        // producers run ahead of the consumer.
        if (!queue_->Push(Produced{step, std::move(batch)})) {
            return;  // stopped while waiting for room.
        }
    }
}

FeedBatch
InputPipeline::Next()
{
    if (inline_mode_) {
        // The inline fallback still reports its generation time as
        // stall: with no overlap, every microsecond of materialization
        // delays the step — which is exactly what the pipelined mode
        // drives toward zero.
        const auto start = Clock::now();
        FeedBatch batch = fn_(next_step_);
        const std::uint64_t elapsed_us = MicrosSince(start);
        if (telemetry::MetricsEnabled()) {
            auto& m = PipelineMetrics::Get();
            m.produce_us.Observe(elapsed_us);
            m.stall_us.Observe(elapsed_us);
            m.batches_produced.Add(1);
            m.queue_depth.Observe(0);
        }
        ++next_step_;
        return batch;
    }

    const auto wait_start = Clock::now();
    FeedBatch batch;
    for (;;) {
        auto it = reordered_.find(next_step_);
        if (it != reordered_.end()) {
            batch = std::move(it->second);
            reordered_.erase(it);
            break;
        }
        auto popped = queue_->Pop();
        if (!popped) {
            throw std::logic_error(
                "InputPipeline::Next: pipeline stopped");
        }
        // Producers complete out of order; stash anything that is not
        // the next step. The stash is bounded: producers hold at most
        // depth + producer_threads outstanding tickets.
        reordered_.emplace(popped->step, std::move(popped->batch));
    }
    if (telemetry::MetricsEnabled()) {
        auto& m = PipelineMetrics::Get();
        m.stall_us.Observe(MicrosSince(wait_start));
        m.queue_depth.Observe(queue_->size());
    }
    ++next_step_;
    return batch;
}

}  // namespace fathom::data
