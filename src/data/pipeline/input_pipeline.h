/**
 * @file
 * Asynchronous input pipeline: prefetch queue plus double buffering.
 *
 * Fathom's workloads historically synthesized every input batch inline
 * with the step that consumed it, serializing data generation with
 * graph execution — exactly the host-side stall the paper's breakdown
 * methodology is built to expose. InputPipeline overlaps the two: N
 * producer threads materialize feed batches into a bounded prefetch
 * queue while the consumer runs the current step, so with any depth
 * >= 2 step t executes while batch t+1 is generated (double
 * buffering), and deeper queues absorb producer jitter.
 *
 * Determinism is the design center. Batch t is a pure function of
 * (batch function, t): producers claim step indices from an atomic
 * ticket and the batch function derives all randomness from the index
 * (datasets expose BatchAt(index, n), seeded Rng(MixSeed(seed,
 * index))). Neither the producer count nor the queue depth — including
 * depth 0, the inline fallback — changes a single byte of any batch,
 * so fetches, losses, and canonical traces stay bit-identical across
 * every configuration. Producers may *complete* out of order; the
 * consumer reorders by step index, so delivery order is always
 * 0, 1, 2, ...
 *
 * Telemetry (when enabled): `pipeline.queue_depth`,
 * `pipeline.produce_us`, `pipeline.stall_us`,
 * `pipeline.batches_produced`. With a Tracer attached, each producer
 * gets a named aux lane ("<name>-producer-k") whose spans show batch
 * materialization overlapping step execution in Chrome traces.
 */
#ifndef FATHOM_DATA_PIPELINE_INPUT_PIPELINE_H
#define FATHOM_DATA_PIPELINE_INPUT_PIPELINE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/pipeline/bounded_queue.h"
#include "graph/node.h"
#include "runtime/tracer.h"
#include "tensor/tensor.h"

namespace fathom::data {

/** Placeholder feeds for one step (== runtime::FeedMap). */
using FeedBatch = std::map<graph::NodeId, Tensor>;

/**
 * Materializes the feed batch for step @p step. Must be a pure
 * function of the step index when the pipeline runs asynchronously
 * (prefetch_depth > 0): producers invoke it concurrently and out of
 * order. Stateful functions (deepq's policy-in-the-loop generation)
 * are allowed only with prefetch_depth == 0, where the pipeline calls
 * them inline, in order, on the consumer thread.
 */
using BatchFn = std::function<FeedBatch(std::int64_t step)>;

struct InputPipelineOptions {
    /**
     * Bound of the prefetch queue (how many batches may be ready and
     * waiting). 0 disables the background machinery entirely: Next()
     * calls the batch function inline — the deterministic baseline and
     * the only mode that admits stateful batch functions. 1 is classic
     * double buffering; >= 2 also absorbs producer jitter.
     */
    int prefetch_depth = 2;

    /** Background producer threads (ignored when depth is 0). */
    int producer_threads = 1;

    /** Step index of the first batch Next() returns. */
    std::int64_t start_step = 0;

    /**
     * Optional tracer for producer aux lanes; must outlive the
     * pipeline. Null disables span recording.
     */
    runtime::Tracer* tracer = nullptr;

    /** Lane-name prefix, e.g. "speech/train". */
    std::string name = "input";
};

class InputPipeline {
  public:
    /** Starts the producers (unless inline). */
    InputPipeline(BatchFn fn, InputPipelineOptions options);

    InputPipeline(const InputPipeline&) = delete;
    InputPipeline& operator=(const InputPipeline&) = delete;

    /** Stops and joins the producers; queued batches are discarded. */
    ~InputPipeline();

    /**
     * @return the batch for the next step index, in order: start_step,
     * start_step + 1, ... Blocks while the queue is empty (the stall
     * telemetry measures exactly this wait).
     * @throws std::logic_error if called after Stop().
     */
    FeedBatch Next();

    /** Stops producers early; Next() becomes invalid. Idempotent. */
    void Stop();

    /** @return the step index the next call to Next() will return. */
    std::int64_t next_step() const { return next_step_; }

    const InputPipelineOptions& options() const { return options_; }

    /** @return true when running without background producers. */
    bool inline_mode() const { return inline_mode_; }

  private:
    struct Produced {
        std::int64_t step = 0;
        FeedBatch batch;
    };

    void ProducerLoop(std::size_t producer_index);

    BatchFn fn_;
    InputPipelineOptions options_;
    bool inline_mode_ = false;
    std::int64_t next_step_ = 0;

    /** Next unclaimed step index; producers fetch_add to claim. */
    std::atomic<std::int64_t> ticket_;

    std::unique_ptr<BoundedQueue<Produced>> queue_;
    /** Consumer-side stash for batches that completed out of order;
        bounded by depth + producers. */
    std::map<std::int64_t, FeedBatch> reordered_;
    std::vector<int> lanes_;  ///< tracer aux lane per producer.
    std::vector<std::thread> producers_;
};

}  // namespace fathom::data

#endif  // FATHOM_DATA_PIPELINE_INPUT_PIPELINE_H
