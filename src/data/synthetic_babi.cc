#include "data/synthetic_babi.h"

#include <cstring>
#include <stdexcept>

namespace fathom::data {

namespace {

// Token layout: 0 pad, 1 "moved", 2 "took", 3 "where",
// then actors, objects, locations.
constexpr std::int32_t kPad = 0;
constexpr std::int32_t kMoved = 1;
constexpr std::int32_t kTook = 2;
constexpr std::int32_t kWhere = 3;
constexpr std::int32_t kFirstEntity = 4;

}  // namespace

SyntheticBabiDataset::SyntheticBabiDataset(std::int64_t num_sentences,
                                           std::int64_t sentence_len,
                                           bool two_hop, std::uint64_t seed)
    : num_sentences_(num_sentences), sentence_len_(sentence_len),
      two_hop_(two_hop), seed_(seed), rng_(seed)
{
    if (sentence_len < 3) {
        throw std::invalid_argument("bAbI sentences need >= 3 token slots");
    }
    if (num_sentences < 2) {
        throw std::invalid_argument("bAbI stories need >= 2 sentences");
    }
}

std::int32_t
SyntheticBabiDataset::ActorToken(std::int64_t i) const
{
    return static_cast<std::int32_t>(kFirstEntity + i);
}

std::int32_t
SyntheticBabiDataset::ObjectToken(std::int64_t i) const
{
    return static_cast<std::int32_t>(kFirstEntity + kNumActors + i);
}

std::int32_t
SyntheticBabiDataset::LocationToken(std::int64_t i) const
{
    return static_cast<std::int32_t>(kFirstEntity + kNumActors + kNumObjects +
                                     i);
}

std::int64_t
SyntheticBabiDataset::vocab() const
{
    return kFirstEntity + kNumActors + kNumObjects + kNumLocations;
}

std::int32_t
SyntheticBabiDataset::AnswerClass(std::int32_t answer_token) const
{
    const std::int32_t base = LocationToken(0);
    if (answer_token < base || answer_token >= base + kNumLocations) {
        throw std::invalid_argument("not a location token");
    }
    return answer_token - base;
}

std::string
SyntheticBabiDataset::TokenName(std::int32_t token) const
{
    if (token == kPad) {
        return "<pad>";
    }
    if (token == kMoved) {
        return "moved-to";
    }
    if (token == kTook) {
        return "took";
    }
    if (token == kWhere) {
        return "where-is";
    }
    static const char* kActors[] = {"mary", "john", "sandra",
                                    "daniel", "emma", "liam"};
    static const char* kObjects[] = {"apple",  "ball",     "book",
                                     "key",    "bottle",   "coin"};
    static const char* kLocations[] = {"kitchen", "garden",  "office",
                                       "hallway", "bathroom", "bedroom",
                                       "garage",  "cellar"};
    std::int64_t i = token - kFirstEntity;
    if (i < kNumActors) {
        return kActors[i];
    }
    i -= kNumActors;
    if (i < kNumObjects) {
        return kObjects[i];
    }
    i -= kNumObjects;
    if (i < kNumLocations) {
        return kLocations[i];
    }
    return "<unk>";
}

BabiSample
SyntheticBabiDataset::SampleFrom(Rng& rng) const
{
    BabiSample sample;
    sample.story =
        Tensor::Zeros(Shape{num_sentences_, sentence_len_}, DType::kInt32);
    sample.question = Tensor::Zeros(Shape{sentence_len_}, DType::kInt32);
    std::int32_t* story = sample.story.data<std::int32_t>();

    // World state.
    std::vector<std::int64_t> actor_loc(kNumActors, -1);
    std::vector<std::int64_t> object_holder(kNumObjects, -1);

    for (std::int64_t s = 0; s < num_sentences_; ++s) {
        std::int32_t* sentence = story + s * sentence_len_;
        const bool take =
            two_hop_ && s > 0 && rng.Uniform() < 0.4;
        if (take) {
            const std::int64_t actor = rng.UniformInt(kNumActors);
            const std::int64_t object = rng.UniformInt(kNumObjects);
            sentence[0] = ActorToken(actor);
            sentence[1] = kTook;
            sentence[2] = ObjectToken(object);
            object_holder[static_cast<std::size_t>(object)] = actor;
        } else {
            const std::int64_t actor = rng.UniformInt(kNumActors);
            const std::int64_t loc = rng.UniformInt(kNumLocations);
            sentence[0] = ActorToken(actor);
            sentence[1] = kMoved;
            sentence[2] = LocationToken(loc);
            actor_loc[static_cast<std::size_t>(actor)] = loc;
        }
    }

    std::int32_t* question = sample.question.data<std::int32_t>();
    question[0] = kWhere;

    if (two_hop_) {
        // Pick a held object whose holder has a known location.
        for (std::int64_t attempt = 0; attempt < 64; ++attempt) {
            const std::int64_t object = rng.UniformInt(kNumObjects);
            const std::int64_t holder =
                object_holder[static_cast<std::size_t>(object)];
            if (holder >= 0 &&
                actor_loc[static_cast<std::size_t>(holder)] >= 0) {
                question[1] = ObjectToken(object);
                sample.answer = LocationToken(
                    actor_loc[static_cast<std::size_t>(holder)]);
                return sample;
            }
        }
        // Fall through to a one-hop question when no object qualifies.
    }

    for (;;) {
        const std::int64_t actor = rng.UniformInt(kNumActors);
        if (actor_loc[static_cast<std::size_t>(actor)] >= 0) {
            question[1] = ActorToken(actor);
            sample.answer =
                LocationToken(actor_loc[static_cast<std::size_t>(actor)]);
            return sample;
        }
    }
}

BabiBatch
SyntheticBabiDataset::Materialize(Rng& rng, std::int64_t n) const
{
    BabiBatch batch;
    batch.stories =
        Tensor(DType::kInt32, Shape{n, num_sentences_, sentence_len_});
    batch.questions = Tensor(DType::kInt32, Shape{n, sentence_len_});
    batch.answers = Tensor(DType::kInt32, Shape{n});
    const std::int64_t story_stride = num_sentences_ * sentence_len_;
    for (std::int64_t i = 0; i < n; ++i) {
        const BabiSample sample = SampleFrom(rng);
        std::memcpy(batch.stories.data<std::int32_t>() + i * story_stride,
                    sample.story.data<std::int32_t>(),
                    static_cast<std::size_t>(story_stride) * sizeof(int));
        std::memcpy(batch.questions.data<std::int32_t>() + i * sentence_len_,
                    sample.question.data<std::int32_t>(),
                    static_cast<std::size_t>(sentence_len_) * sizeof(int));
        batch.answers.data<std::int32_t>()[i] = AnswerClass(sample.answer);
    }
    return batch;
}

BabiSample
SyntheticBabiDataset::NextSample()
{
    return SampleFrom(rng_);
}

BabiBatch
SyntheticBabiDataset::NextBatch(std::int64_t n)
{
    return Materialize(rng_, n);
}

BabiBatch
SyntheticBabiDataset::BatchAt(std::uint64_t index, std::int64_t n) const
{
    Rng rng(MixSeed(seed_, index));
    return Materialize(rng, n);
}

}  // namespace fathom::data
