/**
 * @file
 * MiniAtari: a deterministic Arcade-Learning-Environment substitute.
 *
 * deepq's training loop needs an emulator producing pixel frames and
 * scalar rewards under agent control. The ALE itself (and its ROMs)
 * are unavailable offline, so we implement a Catch-style game — a ball
 * falls with horizontal drift, a paddle at the bottom moves
 * left/stay/right — rendered to a square grayscale frame. It exercises
 * deepq's full loop: frame stacking, epsilon-greedy control, experience
 * replay, and reward-driven Q updates, and is easy enough that the
 * agent's score visibly improves within a short training run.
 */
#ifndef FATHOM_DATA_MINI_ATARI_H
#define FATHOM_DATA_MINI_ATARI_H

#include <cstdint>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fathom::data {

/** Result of one environment step. */
struct EnvStep {
    Tensor frame;       ///< float32 [size, size] in [0, 1].
    float reward = 0.0f;
    bool episode_done = false;
};

/** The Catch-style environment. */
class MiniAtari {
  public:
    /** Agent actions. */
    enum class Action { kLeft = 0, kStay = 1, kRight = 2 };
    static constexpr int kNumActions = 3;

    /**
     * @param grid_size playfield side length in cells.
     * @param scale     rendering scale (frame side = grid_size * scale).
     */
    MiniAtari(std::int64_t grid_size, std::int64_t scale,
              std::uint64_t seed);

    /** Resets the episode and returns the initial frame. */
    Tensor Reset();

    /**
     * Advances one time step under @p action.
     * Reward is +1 when the ball reaches the bottom row on the paddle,
     * -1 when it misses, 0 otherwise; the episode ends either way.
     */
    EnvStep Step(Action action);

    /**
     * @return a render of the environment's *current* state. After a
     * terminal Step() (whose result carries the final frame of the
     * finished episode) the environment has already reset; use this to
     * observe the new episode's first frame.
     */
    Tensor CurrentFrame() const { return Render(); }

    /** Frame side length in pixels. */
    std::int64_t frame_size() const { return grid_size_ * scale_; }

    /** @return the episode count completed so far. */
    std::int64_t episodes() const { return episodes_; }

  private:
    Tensor Render() const;

    std::int64_t grid_size_;
    std::int64_t scale_;
    Rng rng_;
    std::int64_t ball_x_ = 0;
    std::int64_t ball_y_ = 0;
    std::int64_t drift_ = 0;    ///< per-2-steps horizontal ball motion.
    std::int64_t paddle_x_ = 0;
    std::int64_t steps_ = 0;
    std::int64_t episodes_ = 0;
};

}  // namespace fathom::data

#endif  // FATHOM_DATA_MINI_ATARI_H
