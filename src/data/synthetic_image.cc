#include "data/synthetic_image.h"

#include <cmath>

namespace fathom::data {

SyntheticImageDataset::SyntheticImageDataset(std::int64_t size,
                                             std::int64_t channels,
                                             std::int64_t num_classes,
                                             std::uint64_t seed)
    : size_(size), channels_(channels), num_classes_(num_classes),
      seed_(seed), rng_(seed)
{
}

void
SyntheticImageDataset::RenderSample(Rng& rng, float* pixels,
                                    std::int64_t label) const
{
    // Class-deterministic geometry: a per-class RNG drives blob centers
    // and texture orientation, the instance RNG adds jitter and noise.
    Rng class_rng(0xC0FFEEull + static_cast<std::uint64_t>(label) * 7919ull);
    const float cx =
        class_rng.UniformFloat(0.25f, 0.75f) * static_cast<float>(size_);
    const float cy =
        class_rng.UniformFloat(0.25f, 0.75f) * static_cast<float>(size_);
    const float sigma = class_rng.UniformFloat(0.08f, 0.2f) *
                        static_cast<float>(size_);
    const float freq = class_rng.UniformFloat(0.2f, 0.9f);
    const float angle = class_rng.UniformFloat(0.0f, 3.14159f);
    const float ca = std::cos(angle);
    const float sa = std::sin(angle);

    const float jitter_x = rng.Normal(0.0f, 1.5f);
    const float jitter_y = rng.Normal(0.0f, 1.5f);

    for (std::int64_t y = 0; y < size_; ++y) {
        for (std::int64_t x = 0; x < size_; ++x) {
            const float dx = static_cast<float>(x) - cx - jitter_x;
            const float dy = static_cast<float>(y) - cy - jitter_y;
            const float blob =
                std::exp(-(dx * dx + dy * dy) / (2.0f * sigma * sigma));
            const float texture =
                0.3f * std::sin(freq * (ca * static_cast<float>(x) +
                                        sa * static_cast<float>(y)));
            for (std::int64_t c = 0; c < channels_; ++c) {
                const float channel_phase =
                    0.25f * static_cast<float>(c + 1);
                pixels[(y * size_ + x) * channels_ + c] =
                    blob * channel_phase + texture +
                    rng.Normal(0.0f, 0.05f);
            }
        }
    }
}

ImageBatch
SyntheticImageDataset::Materialize(Rng& rng, std::int64_t n) const
{
    ImageBatch batch;
    batch.images =
        Tensor(DType::kFloat32, Shape{n, size_, size_, channels_});
    batch.labels = Tensor(DType::kInt32, Shape{n});
    float* pixels = batch.images.data<float>();
    std::int32_t* labels = batch.labels.data<std::int32_t>();
    const std::int64_t stride = size_ * size_ * channels_;
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t label = rng.UniformInt(num_classes_);
        labels[i] = static_cast<std::int32_t>(label);
        RenderSample(rng, pixels + i * stride, label);
    }
    return batch;
}

ImageBatch
SyntheticImageDataset::NextBatch(std::int64_t n)
{
    return Materialize(rng_, n);
}

ImageBatch
SyntheticImageDataset::BatchAt(std::uint64_t index, std::int64_t n) const
{
    Rng rng(MixSeed(seed_, index));
    return Materialize(rng, n);
}

}  // namespace fathom::data
