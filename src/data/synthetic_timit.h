/**
 * @file
 * Synthetic TIMIT substitute for the speech workload.
 *
 * The paper substitutes TIMIT for Baidu's proprietary corpus; we go one
 * step further and synthesize TIMIT-like data: each phoneme class has a
 * characteristic formant profile (peaks in the frequency axis), and an
 * utterance is a sequence of phonemes each held for a random number of
 * frames. This drives the identical code path — spectrogram frames in,
 * CTC-aligned phoneme labels out — with realistic length variation.
 */
#ifndef FATHOM_DATA_SYNTHETIC_TIMIT_H
#define FATHOM_DATA_SYNTHETIC_TIMIT_H

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fathom::data {

/** One utterance: frames plus its unaligned phoneme transcription. */
struct Utterance {
    Tensor frames;                     ///< float32 [time, freq_bins].
    std::vector<std::int32_t> labels;  ///< phoneme ids in [1, phonemes].
};

/** Formant-profile synthetic speech stream. */
class SyntheticTimitDataset {
  public:
    /**
     * @param freq_bins    spectrogram height.
     * @param num_phonemes phoneme inventory size (excluding CTC blank,
     *                     which is id 0).
     * @param max_time     fixed frame count per utterance.
     */
    SyntheticTimitDataset(std::int64_t freq_bins, std::int64_t num_phonemes,
                          std::int64_t max_time, std::uint64_t seed);

    /** @return the next utterance. */
    Utterance Next();

    /**
     * Materializes the @p n utterances of batch @p index: a pure
     * function of (seed, index) — the input pipeline's
     * batch-materialize entry point (safe to call concurrently).
     */
    std::vector<Utterance> BatchAt(std::uint64_t index,
                                   std::int64_t n) const;

    std::int64_t freq_bins() const { return freq_bins_; }
    std::int64_t num_phonemes() const { return num_phonemes_; }
    std::int64_t max_time() const { return max_time_; }

  private:
    Utterance Materialize(Rng& rng) const;

    std::int64_t freq_bins_;
    std::int64_t num_phonemes_;
    std::int64_t max_time_;
    std::uint64_t seed_;
    Rng rng_;
};

}  // namespace fathom::data

#endif  // FATHOM_DATA_SYNTHETIC_TIMIT_H
