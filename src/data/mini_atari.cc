#include "data/mini_atari.h"

#include <algorithm>
#include <stdexcept>

namespace fathom::data {

MiniAtari::MiniAtari(std::int64_t grid_size, std::int64_t scale,
                     std::uint64_t seed)
    : grid_size_(grid_size), scale_(scale), rng_(seed)
{
    if (grid_size < 4 || scale < 1) {
        throw std::invalid_argument("MiniAtari: grid >= 4, scale >= 1");
    }
    Reset();
}

Tensor
MiniAtari::Reset()
{
    ball_x_ = rng_.UniformInt(grid_size_);
    ball_y_ = 0;
    drift_ = rng_.UniformInt(3) - 1;  // -1, 0, +1.
    paddle_x_ = grid_size_ / 2;
    steps_ = 0;
    return Render();
}

EnvStep
MiniAtari::Step(Action action)
{
    switch (action) {
      case Action::kLeft:
        paddle_x_ = std::max<std::int64_t>(paddle_x_ - 1, 0);
        break;
      case Action::kRight:
        paddle_x_ = std::min(paddle_x_ + 1, grid_size_ - 1);
        break;
      case Action::kStay:
        break;
    }

    ++steps_;
    ball_y_ += 1;
    if (steps_ % 2 == 0) {
        ball_x_ = std::clamp<std::int64_t>(ball_x_ + drift_, 0,
                                           grid_size_ - 1);
    }

    EnvStep result;
    if (ball_y_ >= grid_size_ - 1) {
        // Paddle is 3 cells wide (center +/- 1).
        const bool caught = std::llabs(ball_x_ - paddle_x_) <= 1;
        result.reward = caught ? 1.0f : -1.0f;
        result.episode_done = true;
        ++episodes_;
        result.frame = Render();
        Reset();
        return result;
    }
    result.frame = Render();
    return result;
}

Tensor
MiniAtari::Render() const
{
    const std::int64_t size = frame_size();
    Tensor frame = Tensor::Zeros(Shape{size, size});
    float* p = frame.data<float>();
    auto paint = [&](std::int64_t gx, std::int64_t gy, float value) {
        for (std::int64_t dy = 0; dy < scale_; ++dy) {
            for (std::int64_t dx = 0; dx < scale_; ++dx) {
                p[(gy * scale_ + dy) * size + gx * scale_ + dx] = value;
            }
        }
    };
    paint(ball_x_, ball_y_, 1.0f);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t px =
            std::clamp<std::int64_t>(paddle_x_ + dx, 0, grid_size_ - 1);
        paint(px, grid_size_ - 1, 0.8f);
    }
    return frame;
}

}  // namespace fathom::data
