/**
 * @file
 * Synthetic MNIST substitute for the variational autoencoder.
 *
 * autoenc is unsupervised: all it needs is a dataset with a compact
 * latent structure that a VAE can learn to reconstruct. We generate
 * 28x28 "digit-like" images as 2-3 strokes (line segments with
 * Gaussian cross-sections) whose endpoints are class-conditioned, which
 * gives the data exactly the low-dimensional manifold structure the
 * model assumes.
 */
#ifndef FATHOM_DATA_SYNTHETIC_MNIST_H
#define FATHOM_DATA_SYNTHETIC_MNIST_H

#include <cstdint>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fathom::data {

/** One minibatch of flattened images. */
struct MnistBatch {
    Tensor images;  ///< float32 [n, 784] in [0, 1].
    Tensor labels;  ///< int32 [n] in [0, 10).
};

/** Stroke-based synthetic digit stream. */
class SyntheticMnistDataset {
  public:
    explicit SyntheticMnistDataset(std::uint64_t seed);

    MnistBatch NextBatch(std::int64_t n);

    /**
     * Materializes batch @p index of the indexed stream: a pure
     * function of (seed, index) — the input pipeline's
     * batch-materialize entry point (safe to call concurrently).
     */
    MnistBatch BatchAt(std::uint64_t index, std::int64_t n) const;

    /** Image side length (28, matching MNIST). */
    static constexpr std::int64_t kSize = 28;

    /** Flattened feature size (784). */
    static constexpr std::int64_t kFeatures = kSize * kSize;

  private:
    MnistBatch Materialize(Rng& rng, std::int64_t n) const;
    void RenderDigit(Rng& rng, float* pixels, std::int64_t label) const;

    std::uint64_t seed_;
    Rng rng_;
};

}  // namespace fathom::data

#endif  // FATHOM_DATA_SYNTHETIC_MNIST_H
