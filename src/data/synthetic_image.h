/**
 * @file
 * Synthetic ImageNet substitute.
 *
 * The paper's image workloads (alexnet, vgg, residual) train on
 * ImageNet; the characterization depends only on tensor shapes and op
 * mixes, never on photographic content, so we substitute a
 * class-conditional generator: each class is a reproducible mixture of
 * Gaussian blobs and oriented sinusoidal texture, plus per-sample
 * noise. The classes are genuinely separable, so "loss goes down"
 * remains a meaningful integration test.
 */
#ifndef FATHOM_DATA_SYNTHETIC_IMAGE_H
#define FATHOM_DATA_SYNTHETIC_IMAGE_H

#include <cstdint>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fathom::data {

/** One minibatch of images and labels. */
struct ImageBatch {
    Tensor images;  ///< float32 [n, size, size, channels], roughly [-1, 1].
    Tensor labels;  ///< int32 [n] in [0, num_classes).
};

/** Class-conditional synthetic image stream. */
class SyntheticImageDataset {
  public:
    /**
     * @param size        square image side.
     * @param channels    color channels.
     * @param num_classes label count.
     * @param seed        stream seed (same seed, same stream).
     */
    SyntheticImageDataset(std::int64_t size, std::int64_t channels,
                          std::int64_t num_classes, std::uint64_t seed);

    /** @return the next batch of @p n samples. */
    ImageBatch NextBatch(std::int64_t n);

    /**
     * Materializes batch @p index of the indexed stream: a pure
     * function of (seed, index), independent of calls to NextBatch or
     * other indices — the input pipeline's batch-materialize entry
     * point (safe to call concurrently).
     */
    ImageBatch BatchAt(std::uint64_t index, std::int64_t n) const;

    std::int64_t size() const { return size_; }
    std::int64_t channels() const { return channels_; }
    std::int64_t num_classes() const { return num_classes_; }

  private:
    ImageBatch Materialize(Rng& rng, std::int64_t n) const;
    void RenderSample(Rng& rng, float* pixels, std::int64_t label) const;

    std::int64_t size_;
    std::int64_t channels_;
    std::int64_t num_classes_;
    std::uint64_t seed_;
    Rng rng_;
};

}  // namespace fathom::data

#endif  // FATHOM_DATA_SYNTHETIC_IMAGE_H
