/**
 * @file
 * Synthetic bAbI substitute for memnet.
 *
 * Generates the structure of bAbI task 1 (single supporting fact) and
 * task 2 (two supporting facts): actors move between locations and
 * carry objects; a question asks where an actor or object is, and the
 * answer requires reading one or two of the story's sentences. This is
 * a genuine deduction task a memory network can learn, with the same
 * bag-of-words sentence encoding as the original model.
 */
#ifndef FATHOM_DATA_SYNTHETIC_BABI_H
#define FATHOM_DATA_SYNTHETIC_BABI_H

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fathom::data {

/** One question-answering sample. */
struct BabiSample {
    Tensor story;     ///< int32 [sentences, sentence_len] token ids (0 pad).
    Tensor question;  ///< int32 [sentence_len].
    std::int32_t answer = 0;  ///< location token id.
};

/** One padded batch of samples. */
struct BabiBatch {
    Tensor stories;    ///< int32 [n, sentences, sentence_len].
    Tensor questions;  ///< int32 [n, sentence_len].
    Tensor answers;    ///< int32 [n] (class = location index).
};

/** Story generator for memnet. */
class SyntheticBabiDataset {
  public:
    /**
     * @param num_sentences story length (memory slots).
     * @param sentence_len  tokens per sentence (padded).
     * @param two_hop       if true, questions require chaining two
     *                      facts (object -> carrier -> location).
     */
    SyntheticBabiDataset(std::int64_t num_sentences,
                         std::int64_t sentence_len, bool two_hop,
                         std::uint64_t seed);

    BabiBatch NextBatch(std::int64_t n);
    BabiSample NextSample();

    /**
     * Materializes batch @p index of the indexed stream: a pure
     * function of (seed, index) — the input pipeline's
     * batch-materialize entry point (safe to call concurrently).
     */
    BabiBatch BatchAt(std::uint64_t index, std::int64_t n) const;

    /** Vocabulary size (pad + verbs + actors + objects + locations). */
    std::int64_t vocab() const;

    /** Number of distinct answers (locations). */
    std::int64_t num_answers() const { return kNumLocations; }

    /** @return answer class index in [0, num_answers) for a sample. */
    std::int32_t AnswerClass(std::int32_t answer_token) const;

    std::int64_t num_sentences() const { return num_sentences_; }
    std::int64_t sentence_len() const { return sentence_len_; }

    /** @return a readable rendering of a token (for examples/demos). */
    std::string TokenName(std::int32_t token) const;

    static constexpr std::int64_t kNumActors = 6;
    static constexpr std::int64_t kNumObjects = 6;
    static constexpr std::int64_t kNumLocations = 8;

  private:
    std::int32_t ActorToken(std::int64_t i) const;
    std::int32_t ObjectToken(std::int64_t i) const;
    std::int32_t LocationToken(std::int64_t i) const;

    BabiSample SampleFrom(Rng& rng) const;
    BabiBatch Materialize(Rng& rng, std::int64_t n) const;

    std::int64_t num_sentences_;
    std::int64_t sentence_len_;
    bool two_hop_;
    std::uint64_t seed_;
    Rng rng_;
};

}  // namespace fathom::data

#endif  // FATHOM_DATA_SYNTHETIC_BABI_H
