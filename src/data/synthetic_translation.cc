#include "data/synthetic_translation.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fathom::data {

SyntheticTranslationDataset::SyntheticTranslationDataset(std::int64_t vocab,
                                                         std::int64_t src_len,
                                                         std::uint64_t seed)
    : vocab_(vocab), src_len_(src_len), seed_(seed), rng_(seed)
{
    if (vocab < kFirstWordToken + 1) {
        throw std::invalid_argument("translation vocab too small");
    }
    // A fixed random permutation of the word tokens defines the
    // "other language"; special tokens map to themselves.
    permutation_.resize(static_cast<std::size_t>(vocab));
    std::iota(permutation_.begin(), permutation_.end(), 0);
    Rng perm_rng(seed ^ 0xBABB1Eull);
    for (std::int64_t i = vocab - 1; i > kFirstWordToken; --i) {
        const std::int64_t j =
            kFirstWordToken + perm_rng.UniformInt(i - kFirstWordToken + 1);
        std::swap(permutation_[static_cast<std::size_t>(i)],
                  permutation_[static_cast<std::size_t>(j)]);
    }
}

std::int32_t
SyntheticTranslationDataset::Translate(std::int32_t token) const
{
    return permutation_[static_cast<std::size_t>(token)];
}

TranslationBatch
SyntheticTranslationDataset::Materialize(Rng& rng, std::int64_t n) const
{
    TranslationBatch batch;
    batch.source = Tensor(DType::kInt32, Shape{n, src_len_});
    batch.target = Tensor(DType::kInt32, Shape{n, tgt_len()});
    std::int32_t* src = batch.source.data<std::int32_t>();
    std::int32_t* tgt = batch.target.data<std::int32_t>();

    for (std::int64_t i = 0; i < n; ++i) {
        // Sentence length in [src_len/2, src_len]; the tail is padding.
        const std::int64_t words =
            src_len_ / 2 + rng.UniformInt(src_len_ - src_len_ / 2 + 1);
        std::vector<std::int32_t> sentence;
        for (std::int64_t w = 0; w < src_len_; ++w) {
            std::int32_t token = kPadToken;
            if (w < words) {
                token = static_cast<std::int32_t>(
                    kFirstWordToken + rng.UniformInt(vocab_ -
                                                     kFirstWordToken));
                sentence.push_back(token);
            }
            src[i * src_len_ + w] = token;
        }
        // Target = GO + permutation(reverse(sentence)) + EOS + padding.
        std::int64_t pos = 0;
        tgt[i * tgt_len() + pos++] = kGoToken;
        for (auto it = sentence.rbegin(); it != sentence.rend(); ++it) {
            tgt[i * tgt_len() + pos++] = Translate(*it);
        }
        tgt[i * tgt_len() + pos++] = kEosToken;
        while (pos < tgt_len()) {
            tgt[i * tgt_len() + pos++] = kPadToken;
        }
    }
    return batch;
}

TranslationBatch
SyntheticTranslationDataset::NextBatch(std::int64_t n)
{
    return Materialize(rng_, n);
}

TranslationBatch
SyntheticTranslationDataset::BatchAt(std::uint64_t index,
                                     std::int64_t n) const
{
    Rng rng(MixSeed(seed_, index));
    return Materialize(rng, n);
}

}  // namespace fathom::data
