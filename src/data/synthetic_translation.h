/**
 * @file
 * Synthetic WMT substitute for seq2seq.
 *
 * A toy "language pair": the target sentence is a deterministic
 * token-level transformation of the source (a vocabulary permutation
 * applied to the reversed source). Reversal is the canonical
 * encoder-decoder stress test from the original seq2seq paper — the
 * model must carry the whole sentence through the thought vector — and
 * a learned permutation forces the embedding/softmax machinery to do
 * real work.
 */
#ifndef FATHOM_DATA_SYNTHETIC_TRANSLATION_H
#define FATHOM_DATA_SYNTHETIC_TRANSLATION_H

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fathom::data {

/** Reserved token ids. */
inline constexpr std::int32_t kPadToken = 0;
inline constexpr std::int32_t kGoToken = 1;
inline constexpr std::int32_t kEosToken = 2;
inline constexpr std::int32_t kFirstWordToken = 3;

/** One batch of aligned sentence pairs (fixed length, padded). */
struct TranslationBatch {
    Tensor source;  ///< int32 [n, src_len].
    Tensor target;  ///< int32 [n, tgt_len] (= GO + translated + EOS + pad).
};

/** Deterministic-transformation parallel corpus. */
class SyntheticTranslationDataset {
  public:
    /**
     * @param vocab   total vocabulary size (>= kFirstWordToken + 1).
     * @param src_len source sentence frame length (padded).
     * @param seed    stream seed; also fixes the "language" permutation.
     */
    SyntheticTranslationDataset(std::int64_t vocab, std::int64_t src_len,
                                std::uint64_t seed);

    TranslationBatch NextBatch(std::int64_t n);

    /**
     * Materializes batch @p index of the indexed stream: a pure
     * function of (seed, index) — the input pipeline's
     * batch-materialize entry point (safe to call concurrently).
     */
    TranslationBatch BatchAt(std::uint64_t index, std::int64_t n) const;

    /** @return the translation of one source token. */
    std::int32_t Translate(std::int32_t token) const;

    std::int64_t vocab() const { return vocab_; }
    std::int64_t src_len() const { return src_len_; }

    /** Target frame length: GO + src_len + EOS. */
    std::int64_t tgt_len() const { return src_len_ + 2; }

  private:
    TranslationBatch Materialize(Rng& rng, std::int64_t n) const;

    std::int64_t vocab_;
    std::int64_t src_len_;
    std::vector<std::int32_t> permutation_;  ///< word -> translated word.
    std::uint64_t seed_;
    Rng rng_;
};

}  // namespace fathom::data

#endif  // FATHOM_DATA_SYNTHETIC_TRANSLATION_H
