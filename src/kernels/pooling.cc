#include "kernels/pooling.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fathom::kernels {

PoolGeometry
ResolvePool(const Shape& input, std::int64_t window, std::int64_t stride,
            Padding padding)
{
    if (input.rank() != 4) {
        throw std::invalid_argument("Pool input must be NHWC rank-4, got " +
                                    input.ToString());
    }
    if (window < 1 || stride < 1) {
        throw std::invalid_argument("Pool window/stride must be >= 1");
    }
    PoolGeometry g;
    g.batch = input.dim(0);
    g.in_h = input.dim(1);
    g.in_w = input.dim(2);
    g.channels = input.dim(3);
    g.window = window;
    g.stride = stride;
    if (padding == Padding::kSame) {
        g.out_h = (g.in_h + stride - 1) / stride;
        g.out_w = (g.in_w + stride - 1) / stride;
        const std::int64_t pad_h =
            std::max<std::int64_t>((g.out_h - 1) * stride + window - g.in_h, 0);
        const std::int64_t pad_w =
            std::max<std::int64_t>((g.out_w - 1) * stride + window - g.in_w, 0);
        g.pad_top = pad_h / 2;
        g.pad_left = pad_w / 2;
    } else {
        if (g.in_h < window || g.in_w < window) {
            throw std::invalid_argument("Pool VALID: window larger than input");
        }
        g.out_h = (g.in_h - window) / stride + 1;
        g.out_w = (g.in_w - window) / stride + 1;
        g.pad_top = 0;
        g.pad_left = 0;
    }
    return g;
}

namespace {

/**
 * Shared window sweep. @p fn is called once per (output cell, channel)
 * with the clipped input window bounds.
 */
template <typename Fn>
void
ForEachWindow(const PoolGeometry& g, parallel::ThreadPool& pool, Fn fn)
{
    pool.ParallelFor(
        g.batch * g.out_h, /*grain=*/1,
        [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t n = r / g.out_h;
                const std::int64_t oh = r % g.out_h;
                const std::int64_t h0 =
                    std::max<std::int64_t>(oh * g.stride - g.pad_top, 0);
                const std::int64_t h1 = std::min(
                    oh * g.stride - g.pad_top + g.window, g.in_h);
                for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
                    const std::int64_t w0 =
                        std::max<std::int64_t>(ow * g.stride - g.pad_left, 0);
                    const std::int64_t w1 = std::min(
                        ow * g.stride - g.pad_left + g.window, g.in_w);
                    fn(n, oh, ow, h0, h1, w0, w1);
                }
            }
        });
}

}  // namespace

Tensor
MaxPool(const Tensor& input, std::int64_t window, std::int64_t stride,
        Padding padding, parallel::ThreadPool& pool)
{
    const PoolGeometry g = ResolvePool(input.shape(), window, stride, padding);
    Tensor out(DType::kFloat32, Shape{g.batch, g.out_h, g.out_w, g.channels});
    const float* in = input.data<float>();
    float* o = out.data<float>();
    const std::int64_t in_row = g.in_w * g.channels;
    const std::int64_t in_img = g.in_h * in_row;
    const std::int64_t out_row = g.out_w * g.channels;
    const std::int64_t out_img = g.out_h * out_row;

    ForEachWindow(g, pool,
                  [&](std::int64_t n, std::int64_t oh, std::int64_t ow,
                      std::int64_t h0, std::int64_t h1, std::int64_t w0,
                      std::int64_t w1) {
        float* optr = o + n * out_img + oh * out_row + ow * g.channels;
        for (std::int64_t c = 0; c < g.channels; ++c) {
            float best = -std::numeric_limits<float>::infinity();
            for (std::int64_t h = h0; h < h1; ++h) {
                for (std::int64_t w = w0; w < w1; ++w) {
                    best = std::max(best,
                                    in[n * in_img + h * in_row +
                                       w * g.channels + c]);
                }
            }
            optr[c] = best;
        }
    });
    return out;
}

Tensor
MaxPoolGrad(const Tensor& input, const Tensor& grad_out, std::int64_t window,
            std::int64_t stride, Padding padding, parallel::ThreadPool& pool)
{
    const PoolGeometry g = ResolvePool(input.shape(), window, stride, padding);
    Tensor grad_in = Tensor::Zeros(input.shape());
    const float* in = input.data<float>();
    const float* go = grad_out.data<float>();
    float* gi = grad_in.data<float>();
    const std::int64_t in_row = g.in_w * g.channels;
    const std::int64_t in_img = g.in_h * in_row;
    const std::int64_t out_row = g.out_w * g.channels;
    const std::int64_t out_img = g.out_h * out_row;

    // Serial over windows: with stride < window, adjacent windows can
    // route gradient to the same input cell, so the parallel write
    // pattern is unsafe. Pool gradients are a tiny slice of runtime.
    parallel::ThreadPool inline_pool(1);
    ForEachWindow(g, inline_pool,
                  [&](std::int64_t n, std::int64_t oh, std::int64_t ow,
                      std::int64_t h0, std::int64_t h1, std::int64_t w0,
                      std::int64_t w1) {
        const float* goptr = go + n * out_img + oh * out_row + ow * g.channels;
        for (std::int64_t c = 0; c < g.channels; ++c) {
            float best = -std::numeric_limits<float>::infinity();
            std::int64_t best_idx = -1;
            for (std::int64_t h = h0; h < h1; ++h) {
                for (std::int64_t w = w0; w < w1; ++w) {
                    const std::int64_t idx =
                        n * in_img + h * in_row + w * g.channels + c;
                    if (in[idx] > best) {
                        best = in[idx];
                        best_idx = idx;
                    }
                }
            }
            if (best_idx >= 0) {
                gi[best_idx] += goptr[c];
            }
        }
    });
    (void)pool;
    return grad_in;
}

Tensor
AvgPool(const Tensor& input, std::int64_t window, std::int64_t stride,
        Padding padding, parallel::ThreadPool& pool)
{
    const PoolGeometry g = ResolvePool(input.shape(), window, stride, padding);
    Tensor out(DType::kFloat32, Shape{g.batch, g.out_h, g.out_w, g.channels});
    const float* in = input.data<float>();
    float* o = out.data<float>();
    const std::int64_t in_row = g.in_w * g.channels;
    const std::int64_t in_img = g.in_h * in_row;
    const std::int64_t out_row = g.out_w * g.channels;
    const std::int64_t out_img = g.out_h * out_row;

    ForEachWindow(g, pool,
                  [&](std::int64_t n, std::int64_t oh, std::int64_t ow,
                      std::int64_t h0, std::int64_t h1, std::int64_t w0,
                      std::int64_t w1) {
        float* optr = o + n * out_img + oh * out_row + ow * g.channels;
        const float inv_count =
            1.0f / static_cast<float>((h1 - h0) * (w1 - w0));
        for (std::int64_t c = 0; c < g.channels; ++c) {
            float sum = 0.0f;
            for (std::int64_t h = h0; h < h1; ++h) {
                for (std::int64_t w = w0; w < w1; ++w) {
                    sum += in[n * in_img + h * in_row + w * g.channels + c];
                }
            }
            optr[c] = sum * inv_count;
        }
    });
    return out;
}

Tensor
AvgPoolGrad(const Shape& input_shape, const Tensor& grad_out,
            std::int64_t window, std::int64_t stride, Padding padding,
            parallel::ThreadPool& pool)
{
    const PoolGeometry g = ResolvePool(input_shape, window, stride, padding);
    Tensor grad_in = Tensor::Zeros(input_shape);
    const float* go = grad_out.data<float>();
    float* gi = grad_in.data<float>();
    const std::int64_t in_row = g.in_w * g.channels;
    const std::int64_t in_img = g.in_h * in_row;
    const std::int64_t out_row = g.out_w * g.channels;
    const std::int64_t out_img = g.out_h * out_row;

    parallel::ThreadPool inline_pool(1);
    ForEachWindow(g, inline_pool,
                  [&](std::int64_t n, std::int64_t oh, std::int64_t ow,
                      std::int64_t h0, std::int64_t h1, std::int64_t w0,
                      std::int64_t w1) {
        const float* goptr = go + n * out_img + oh * out_row + ow * g.channels;
        const float inv_count =
            1.0f / static_cast<float>((h1 - h0) * (w1 - w0));
        for (std::int64_t c = 0; c < g.channels; ++c) {
            const float v = goptr[c] * inv_count;
            for (std::int64_t h = h0; h < h1; ++h) {
                for (std::int64_t w = w0; w < w1; ++w) {
                    gi[n * in_img + h * in_row + w * g.channels + c] += v;
                }
            }
        }
    });
    (void)pool;
    return grad_in;
}

}  // namespace fathom::kernels
