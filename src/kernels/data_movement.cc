#include "kernels/data_movement.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace fathom::kernels {

Tensor
Transpose(const Tensor& input, const std::vector<int>& perm,
          parallel::ThreadPool& pool)
{
    const Shape& in_shape = input.shape();
    const int rank = in_shape.rank();
    if (static_cast<int>(perm.size()) != rank) {
        throw std::invalid_argument("Transpose: perm rank mismatch");
    }
    {
        std::vector<int> sorted(perm);
        std::sort(sorted.begin(), sorted.end());
        for (int i = 0; i < rank; ++i) {
            if (sorted[static_cast<std::size_t>(i)] != i) {
                throw std::invalid_argument("Transpose: perm is not a permutation");
            }
        }
    }

    std::vector<std::int64_t> out_dims(static_cast<std::size_t>(rank));
    for (int i = 0; i < rank; ++i) {
        out_dims[static_cast<std::size_t>(i)] =
            in_shape.dim(perm[static_cast<std::size_t>(i)]);
    }
    const Shape out_shape(out_dims);
    Tensor out(input.dtype(), out_shape);

    std::vector<std::int64_t> in_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        in_strides[static_cast<std::size_t>(i)] =
            in_strides[static_cast<std::size_t>(i + 1)] * in_shape.dim(i + 1);
    }
    // Stride of output dimension d within the *input* buffer.
    std::vector<std::int64_t> src_strides(static_cast<std::size_t>(rank));
    for (int d = 0; d < rank; ++d) {
        src_strides[static_cast<std::size_t>(d)] =
            in_strides[static_cast<std::size_t>(perm[static_cast<std::size_t>(d)])];
    }
    std::vector<std::int64_t> out_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        out_strides[static_cast<std::size_t>(i)] =
            out_strides[static_cast<std::size_t>(i + 1)] * out_shape.dim(i + 1);
    }

    const std::int64_t n = out_shape.num_elements();
    auto copy_loop = [&](auto* o, const auto* in) {
        pool.ParallelFor(n, /*grain=*/2048,
                         [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t flat = i0; flat < i1; ++flat) {
                std::int64_t rem = flat;
                std::int64_t src = 0;
                for (int d = 0; d < rank; ++d) {
                    const std::int64_t od =
                        rem / out_strides[static_cast<std::size_t>(d)];
                    rem -= od * out_strides[static_cast<std::size_t>(d)];
                    src += od * src_strides[static_cast<std::size_t>(d)];
                }
                o[flat] = in[src];
            }
        });
    };
    if (input.dtype() == DType::kFloat32) {
        copy_loop(out.data<float>(), input.data<float>());
    } else {
        copy_loop(out.data<std::int32_t>(), input.data<std::int32_t>());
    }
    return out;
}

Tensor
Concat(const std::vector<Tensor>& inputs, int axis, parallel::ThreadPool& pool)
{
    if (inputs.empty()) {
        throw std::invalid_argument("Concat: needs at least one input");
    }
    const Shape& first = inputs[0].shape();
    const int rank = first.rank();
    if (axis < 0) {
        axis += rank;
    }
    if (axis < 0 || axis >= rank) {
        throw std::invalid_argument("Concat: axis out of range");
    }

    std::int64_t concat_dim = 0;
    for (const Tensor& t : inputs) {
        if (t.shape().rank() != rank || t.dtype() != inputs[0].dtype()) {
            throw std::invalid_argument("Concat: rank/dtype mismatch");
        }
        for (int d = 0; d < rank; ++d) {
            if (d != axis && t.shape().dim(d) != first.dim(d)) {
                throw std::invalid_argument(
                    "Concat: non-axis dimension mismatch: " +
                    t.shape().ToString() + " vs " + first.ToString());
            }
        }
        concat_dim += t.shape().dim(axis);
    }

    std::vector<std::int64_t> out_dims = first.dims();
    out_dims[static_cast<std::size_t>(axis)] = concat_dim;
    const Shape out_shape(out_dims);
    Tensor out(inputs[0].dtype(), out_shape);

    // View every tensor as [outer, axis_dim * inner] rows of bytes.
    std::int64_t outer = 1;
    for (int d = 0; d < axis; ++d) {
        outer *= first.dim(d);
    }
    std::int64_t inner = 1;
    for (int d = axis + 1; d < rank; ++d) {
        inner *= first.dim(d);
    }
    const std::size_t elem = DTypeSize(inputs[0].dtype());

    char* obase = out.dtype() == DType::kFloat32
                      ? reinterpret_cast<char*>(out.data<float>())
                      : reinterpret_cast<char*>(out.data<std::int32_t>());
    const std::size_t out_row_bytes =
        static_cast<std::size_t>(concat_dim * inner) * elem;

    std::size_t dest_offset = 0;
    for (const Tensor& t : inputs) {
        const char* ibase =
            t.dtype() == DType::kFloat32
                ? reinterpret_cast<const char*>(t.data<float>())
                : reinterpret_cast<const char*>(t.data<std::int32_t>());
        const std::size_t in_row_bytes =
            static_cast<std::size_t>(t.shape().dim(axis) * inner) * elem;
        for (std::int64_t r = 0; r < outer; ++r) {
            std::memcpy(obase + static_cast<std::size_t>(r) * out_row_bytes +
                            dest_offset,
                        ibase + static_cast<std::size_t>(r) * in_row_bytes,
                        in_row_bytes);
        }
        dest_offset += in_row_bytes;
    }
    (void)pool;
    return out;
}

Tensor
Slice(const Tensor& input, const std::vector<std::int64_t>& begin,
      const std::vector<std::int64_t>& size, parallel::ThreadPool& pool)
{
    const Shape& in_shape = input.shape();
    const int rank = in_shape.rank();
    if (static_cast<int>(begin.size()) != rank ||
        static_cast<int>(size.size()) != rank) {
        throw std::invalid_argument("Slice: begin/size rank mismatch");
    }
    std::vector<std::int64_t> out_dims(static_cast<std::size_t>(rank));
    for (int d = 0; d < rank; ++d) {
        const std::int64_t b = begin[static_cast<std::size_t>(d)];
        std::int64_t s = size[static_cast<std::size_t>(d)];
        if (s == -1) {
            s = in_shape.dim(d) - b;
        }
        if (b < 0 || s < 0 || b + s > in_shape.dim(d)) {
            throw std::invalid_argument("Slice: out of bounds on axis " +
                                        std::to_string(d));
        }
        out_dims[static_cast<std::size_t>(d)] = s;
    }
    const Shape out_shape(out_dims);
    Tensor out(input.dtype(), out_shape);

    std::vector<std::int64_t> in_strides(static_cast<std::size_t>(rank), 1);
    std::vector<std::int64_t> out_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        in_strides[static_cast<std::size_t>(i)] =
            in_strides[static_cast<std::size_t>(i + 1)] * in_shape.dim(i + 1);
        out_strides[static_cast<std::size_t>(i)] =
            out_strides[static_cast<std::size_t>(i + 1)] * out_shape.dim(i + 1);
    }

    const std::int64_t n = out_shape.num_elements();
    auto copy_loop = [&](auto* o, const auto* in) {
        for (std::int64_t flat = 0; flat < n; ++flat) {
            std::int64_t rem = flat;
            std::int64_t src = 0;
            for (int d = 0; d < rank; ++d) {
                const std::int64_t od =
                    rem / out_strides[static_cast<std::size_t>(d)];
                rem -= od * out_strides[static_cast<std::size_t>(d)];
                src += (od + begin[static_cast<std::size_t>(d)]) *
                       in_strides[static_cast<std::size_t>(d)];
            }
            o[flat] = in[src];
        }
    };
    if (input.dtype() == DType::kFloat32) {
        copy_loop(out.data<float>(), input.data<float>());
    } else {
        copy_loop(out.data<std::int32_t>(), input.data<std::int32_t>());
    }
    (void)pool;
    return out;
}

Tensor
Gather(const Tensor& params, const Tensor& indices, parallel::ThreadPool& pool)
{
    if (params.shape().rank() < 1) {
        throw std::invalid_argument("Gather: params must have rank >= 1");
    }
    if (indices.dtype() != DType::kInt32) {
        throw std::invalid_argument("Gather: indices must be int32");
    }
    const std::int64_t vocab = params.shape().dim(0);
    const std::int64_t inner = params.num_elements() / std::max<std::int64_t>(vocab, 1);

    std::vector<std::int64_t> out_dims = indices.shape().dims();
    for (int d = 1; d < params.shape().rank(); ++d) {
        out_dims.push_back(params.shape().dim(d));
    }
    Tensor out(DType::kFloat32, Shape(out_dims));
    const float* p = params.data<float>();
    const std::int32_t* idx = indices.data<std::int32_t>();
    float* o = out.data<float>();
    const std::int64_t n = indices.num_elements();

    pool.ParallelFor(n, /*grain=*/64, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
            const std::int32_t row = idx[i];
            if (row < 0 || row >= vocab) {
                throw std::out_of_range("Gather: index " + std::to_string(row) +
                                        " out of range [0, " +
                                        std::to_string(vocab) + ")");
            }
            std::memcpy(o + i * inner, p + static_cast<std::int64_t>(row) * inner,
                        static_cast<std::size_t>(inner) * sizeof(float));
        }
    });
    return out;
}

Tensor
GatherGrad(const Shape& params_shape, const Tensor& indices,
           const Tensor& grad_out, parallel::ThreadPool& pool)
{
    Tensor grad = Tensor::Zeros(params_shape);
    const std::int64_t vocab = params_shape.dim(0);
    const std::int64_t inner =
        params_shape.num_elements() / std::max<std::int64_t>(vocab, 1);
    const std::int32_t* idx = indices.data<std::int32_t>();
    const float* go = grad_out.data<float>();
    float* g = grad.data<float>();
    const std::int64_t n = indices.num_elements();
    // Serial scatter-add: duplicate indices are common (shared embeddings).
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int32_t row = idx[i];
        if (row < 0 || row >= vocab) {
            throw std::out_of_range("GatherGrad: index out of range");
        }
        float* dst = g + static_cast<std::int64_t>(row) * inner;
        const float* src = go + i * inner;
        for (std::int64_t k = 0; k < inner; ++k) {
            dst[k] += src[k];
        }
    }
    (void)pool;
    return grad;
}

Tensor
OneHot(const Tensor& indices, std::int64_t depth, float on_value,
       float off_value, parallel::ThreadPool& pool)
{
    if (indices.dtype() != DType::kInt32) {
        throw std::invalid_argument("OneHot: indices must be int32");
    }
    std::vector<std::int64_t> out_dims = indices.shape().dims();
    out_dims.push_back(depth);
    Tensor out = Tensor::Full(Shape(out_dims), off_value);
    const std::int32_t* idx = indices.data<std::int32_t>();
    float* o = out.data<float>();
    const std::int64_t n = indices.num_elements();
    for (std::int64_t i = 0; i < n; ++i) {
        if (idx[i] >= 0 && idx[i] < depth) {
            o[i * depth + idx[i]] = on_value;
        }
    }
    (void)pool;
    return out;
}

Tensor
Pad(const Tensor& input,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& paddings,
    parallel::ThreadPool& pool)
{
    const Shape& in_shape = input.shape();
    const int rank = in_shape.rank();
    if (static_cast<int>(paddings.size()) != rank) {
        throw std::invalid_argument("Pad: paddings rank mismatch");
    }
    std::vector<std::int64_t> out_dims(static_cast<std::size_t>(rank));
    std::vector<std::int64_t> begin(static_cast<std::size_t>(rank));
    for (int d = 0; d < rank; ++d) {
        const auto& [before, after] = paddings[static_cast<std::size_t>(d)];
        if (before < 0 || after < 0) {
            throw std::invalid_argument("Pad: negative padding");
        }
        out_dims[static_cast<std::size_t>(d)] = in_shape.dim(d) + before + after;
        begin[static_cast<std::size_t>(d)] = before;
    }
    Tensor out = Tensor::Zeros(Shape(out_dims));
    const Shape& out_shape = out.shape();

    std::vector<std::int64_t> in_strides(static_cast<std::size_t>(rank), 1);
    std::vector<std::int64_t> out_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        in_strides[static_cast<std::size_t>(i)] =
            in_strides[static_cast<std::size_t>(i + 1)] * in_shape.dim(i + 1);
        out_strides[static_cast<std::size_t>(i)] =
            out_strides[static_cast<std::size_t>(i + 1)] * out_shape.dim(i + 1);
    }
    const float* in = input.data<float>();
    float* o = out.data<float>();
    const std::int64_t n = in_shape.num_elements();
    for (std::int64_t flat = 0; flat < n; ++flat) {
        std::int64_t rem = flat;
        std::int64_t dst = 0;
        for (int d = 0; d < rank; ++d) {
            const std::int64_t id = rem / in_strides[static_cast<std::size_t>(d)];
            rem -= id * in_strides[static_cast<std::size_t>(d)];
            dst += (id + begin[static_cast<std::size_t>(d)]) *
                   out_strides[static_cast<std::size_t>(d)];
        }
        o[dst] = in[flat];
    }
    (void)pool;
    return out;
}

Tensor
PadGrad(const Tensor& grad_out,
        const std::vector<std::pair<std::int64_t, std::int64_t>>& paddings,
        parallel::ThreadPool& pool)
{
    const int rank = grad_out.shape().rank();
    std::vector<std::int64_t> begin(static_cast<std::size_t>(rank));
    std::vector<std::int64_t> size(static_cast<std::size_t>(rank));
    for (int d = 0; d < rank; ++d) {
        const auto& [before, after] = paddings[static_cast<std::size_t>(d)];
        begin[static_cast<std::size_t>(d)] = before;
        size[static_cast<std::size_t>(d)] =
            grad_out.shape().dim(d) - before - after;
    }
    return Slice(grad_out, begin, size, pool);
}

}  // namespace fathom::kernels
