#include "kernels/conv2d.h"

#include <algorithm>
#include <stdexcept>

#include "kernels/gemm.h"
#include "tensor/buffer_pool.h"

namespace fathom::kernels {

Conv2DGeometry
ResolveConv2D(const Shape& input, const Shape& filter, std::int64_t stride,
              Padding padding)
{
    if (input.rank() != 4) {
        throw std::invalid_argument("Conv2D input must be NHWC rank-4, got " +
                                    input.ToString());
    }
    if (filter.rank() != 4) {
        throw std::invalid_argument(
            "Conv2D filter must be [kh, kw, c, oc] rank-4, got " +
            filter.ToString());
    }
    if (input.dim(3) != filter.dim(2)) {
        throw std::invalid_argument(
            "Conv2D channel mismatch: input " + input.ToString() +
            " vs filter " + filter.ToString());
    }
    if (stride < 1) {
        throw std::invalid_argument("Conv2D stride must be >= 1");
    }

    Conv2DGeometry g;
    g.batch = input.dim(0);
    g.in_h = input.dim(1);
    g.in_w = input.dim(2);
    g.in_c = input.dim(3);
    g.k_h = filter.dim(0);
    g.k_w = filter.dim(1);
    g.out_c = filter.dim(3);
    g.stride = stride;

    if (padding == Padding::kSame) {
        g.out_h = (g.in_h + stride - 1) / stride;
        g.out_w = (g.in_w + stride - 1) / stride;
        const std::int64_t pad_h =
            std::max<std::int64_t>((g.out_h - 1) * stride + g.k_h - g.in_h, 0);
        const std::int64_t pad_w =
            std::max<std::int64_t>((g.out_w - 1) * stride + g.k_w - g.in_w, 0);
        g.pad_top = pad_h / 2;
        g.pad_left = pad_w / 2;
    } else {
        if (g.in_h < g.k_h || g.in_w < g.k_w) {
            throw std::invalid_argument("Conv2D VALID: filter larger than input");
        }
        g.out_h = (g.in_h - g.k_h) / stride + 1;
        g.out_w = (g.in_w - g.k_w) / stride + 1;
        g.pad_top = 0;
        g.pad_left = 0;
    }
    return g;
}

namespace {

/**
 * The im2col view of a convolution, shared by all three kernels:
 * the patch matrix P has M = batch * out_h * out_w rows (one output
 * pixel each) and K = k_h * k_w * in_c columns (one filter tap each),
 * with out-of-image taps reading as zero. Then
 *
 *   forward:      out  [M, oc] = P [M, K] * W [K, oc]
 *   filter grad:  gW   [K, oc] = P^T [K, M] * gOut [M, oc]
 *   input grad:   Gcol [M, K]  = gOut [M, oc] * W^T [oc, K],
 *                 then col2im-scatters Gcol back onto the image.
 *
 * W is the filter tensor itself: [kh, kw, ic, oc] row-major is already
 * the [K, oc] matrix. P is never materialized for the two GEMMs that
 * read it — the engine's pack step reads straight from the padded
 * image (Im2colPackA / Im2colPackAT below).
 */

/** Packs kGemmMr consecutive patch-matrix rows (output pixels) for a
 * k-range of filter taps, reading directly from the image. */
PanelPacker
Im2colPackA(const float* in, const Conv2DGeometry& g)
{
    return [in, g](float* dst, std::int64_t row0, std::int64_t k0,
                   std::int64_t k1) {
        const std::int64_t rows = g.batch * g.out_h * g.out_w;
        const std::int64_t in_row = g.in_w * g.in_c;
        const std::int64_t in_img = g.in_h * in_row;
        // Resolve each live row's image and top-left input coordinate
        // once; dead rows (past M, present only in the last strip)
        // pack as zero.
        std::int64_t base[kGemmMr];
        std::int64_t ih0[kGemmMr];
        std::int64_t iw0[kGemmMr];
        bool live[kGemmMr];
        for (std::int64_t r = 0; r < kGemmMr; ++r) {
            const std::int64_t row = row0 + r;
            live[r] = row < rows;
            if (!live[r]) {
                base[r] = ih0[r] = iw0[r] = 0;
                continue;
            }
            const std::int64_t n = row / (g.out_h * g.out_w);
            const std::int64_t rem = row % (g.out_h * g.out_w);
            base[r] = n * in_img;
            ih0[r] = (rem / g.out_w) * g.stride - g.pad_top;
            iw0[r] = (rem % g.out_w) * g.stride - g.pad_left;
        }
        // Walk the tap index (kh, kw, c) incrementally across the
        // k-range instead of dividing per element.
        std::int64_t kh = k0 / (g.k_w * g.in_c);
        std::int64_t rem = k0 % (g.k_w * g.in_c);
        std::int64_t kw = rem / g.in_c;
        std::int64_t c = rem % g.in_c;
        for (std::int64_t p = k0; p < k1; ++p) {
            float* d = dst + (p - k0) * kGemmMr;
            for (std::int64_t r = 0; r < kGemmMr; ++r) {
                float v = 0.0f;
                if (live[r]) {
                    const std::int64_t ih = ih0[r] + kh;
                    const std::int64_t iw = iw0[r] + kw;
                    if (ih >= 0 && ih < g.in_h && iw >= 0 && iw < g.in_w) {
                        v = in[base[r] + ih * in_row + iw * g.in_c + c];
                    }
                }
                d[r] = v;
            }
            if (++c == g.in_c) {
                c = 0;
                if (++kw == g.k_w) {
                    kw = 0;
                    ++kh;
                }
            }
        }
    };
}

/** Packs kGemmMr consecutive rows of P^T (filter taps) for a range of
 * patch-matrix rows (output pixels) — the filter-gradient A panel. */
PanelPacker
Im2colPackAT(const float* in, const Conv2DGeometry& g)
{
    return [in, g](float* dst, std::int64_t row0, std::int64_t p0,
                   std::int64_t p1) {
        const std::int64_t taps = g.k_h * g.k_w * g.in_c;
        const std::int64_t in_row = g.in_w * g.in_c;
        const std::int64_t in_img = g.in_h * in_row;
        std::int64_t kh[kGemmMr];
        std::int64_t kw[kGemmMr];
        std::int64_t ch[kGemmMr];
        bool live[kGemmMr];
        for (std::int64_t r = 0; r < kGemmMr; ++r) {
            const std::int64_t tap = row0 + r;
            live[r] = tap < taps;
            if (!live[r]) {
                kh[r] = kw[r] = ch[r] = 0;
                continue;
            }
            kh[r] = tap / (g.k_w * g.in_c);
            const std::int64_t rem = tap % (g.k_w * g.in_c);
            kw[r] = rem / g.in_c;
            ch[r] = rem % g.in_c;
        }
        // Walk the output-pixel index (n, oh, ow) incrementally.
        std::int64_t n = p0 / (g.out_h * g.out_w);
        std::int64_t rem = p0 % (g.out_h * g.out_w);
        std::int64_t oh = rem / g.out_w;
        std::int64_t ow = rem % g.out_w;
        for (std::int64_t p = p0; p < p1; ++p) {
            float* d = dst + (p - p0) * kGemmMr;
            const std::int64_t base = n * in_img;
            const std::int64_t ih0 = oh * g.stride - g.pad_top;
            const std::int64_t iw0 = ow * g.stride - g.pad_left;
            for (std::int64_t r = 0; r < kGemmMr; ++r) {
                float v = 0.0f;
                if (live[r]) {
                    const std::int64_t ih = ih0 + kh[r];
                    const std::int64_t iw = iw0 + kw[r];
                    if (ih >= 0 && ih < g.in_h && iw >= 0 && iw < g.in_w) {
                        v = in[base + ih * in_row + iw * g.in_c + ch[r]];
                    }
                }
                d[r] = v;
            }
            if (++ow == g.out_w) {
                ow = 0;
                if (++oh == g.out_h) {
                    oh = 0;
                    ++n;
                }
            }
        }
    };
}

void
CheckGradOutShape(const Conv2DGeometry& g, const Tensor& grad_out,
                  const char* kernel)
{
    if (grad_out.shape() != Shape({g.batch, g.out_h, g.out_w, g.out_c})) {
        throw std::invalid_argument(std::string(kernel) + ": grad_out shape " +
                                    grad_out.shape().ToString() +
                                    " inconsistent with geometry");
    }
}

}  // namespace

Tensor
Conv2D(const Tensor& input, const Tensor& filter, std::int64_t stride,
       Padding padding, parallel::ThreadPool& pool)
{
    const Conv2DGeometry g =
        ResolveConv2D(input.shape(), filter.shape(), stride, padding);
    Tensor out(DType::kFloat32, Shape{g.batch, g.out_h, g.out_w, g.out_c});

    // One whole-batch GEMM: out [M, oc] = P [M, K] * W [K, oc], with P
    // packed straight from the padded image.
    const std::int64_t M = g.batch * g.out_h * g.out_w;
    const std::int64_t K = g.k_h * g.k_w * g.in_c;
    GemmPanels(M, g.out_c, K, Im2colPackA(input.data<float>(), g),
               StridedPackB(filter.data<float>(), g.out_c, 1, g.out_c),
               out.data<float>(), /*accumulate=*/false, pool);
    return out;
}

Tensor
Conv2DBackpropInput(const Shape& input_shape, const Tensor& filter,
                    const Tensor& grad_out, std::int64_t stride,
                    Padding padding, parallel::ThreadPool& pool)
{
    const Conv2DGeometry g =
        ResolveConv2D(input_shape, filter.shape(), stride, padding);
    CheckGradOutShape(g, grad_out, "Conv2DBackpropInput");
    Tensor grad_in = Tensor::Zeros(input_shape);

    const std::int64_t M = g.batch * g.out_h * g.out_w;
    const std::int64_t K = g.k_h * g.k_w * g.in_c;

    // Gcol [M, K] = gOut [M, oc] * W^T [oc, K]; the column buffer is
    // pool-recycled scratch, so steady-state steps reuse one block.
    auto col_block = BufferPool::Global().Allocate(
        static_cast<std::size_t>(M * K) * sizeof(float));
    float* gcol = reinterpret_cast<float*>(col_block.get());
    Gemm(M, K, g.out_c, grad_out.data<float>(), g.out_c, 1,
         filter.data<float>(), 1, g.out_c, gcol, /*accumulate=*/false, pool);

    // col2im: gather each input pixel's contributions from the column
    // buffer. Every (n, ih) row is written by exactly one chunk and
    // the tap loop order is fixed, so no races and no order variance.
    const float* col = gcol;
    float* gi = grad_in.data<float>();
    const std::int64_t in_row = g.in_w * g.in_c;
    const std::int64_t in_img = g.in_h * in_row;
    pool.ParallelFor(
        g.batch * g.in_h, /*grain=*/1,
        [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t n = r / g.in_h;
                const std::int64_t ih = r % g.in_h;
                for (std::int64_t iw = 0; iw < g.in_w; ++iw) {
                    float* gip = gi + n * in_img + ih * in_row + iw * g.in_c;
                    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                        // ih = oh*stride - pad_top + kh  =>  oh below.
                        const std::int64_t oh_num = ih + g.pad_top - kh;
                        if (oh_num < 0 || oh_num % g.stride != 0) {
                            continue;
                        }
                        const std::int64_t oh = oh_num / g.stride;
                        if (oh >= g.out_h) {
                            continue;
                        }
                        for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                            const std::int64_t ow_num = iw + g.pad_left - kw;
                            if (ow_num < 0 || ow_num % g.stride != 0) {
                                continue;
                            }
                            const std::int64_t ow = ow_num / g.stride;
                            if (ow >= g.out_w) {
                                continue;
                            }
                            const float* src =
                                col +
                                ((n * g.out_h + oh) * g.out_w + ow) * K +
                                (kh * g.k_w + kw) * g.in_c;
                            for (std::int64_t c = 0; c < g.in_c; ++c) {
                                gip[c] += src[c];
                            }
                        }
                    }
                }
            }
        });
    return grad_in;
}

Tensor
Conv2DBackpropFilter(const Tensor& input, const Shape& filter_shape,
                     const Tensor& grad_out, std::int64_t stride,
                     Padding padding, parallel::ThreadPool& pool)
{
    const Conv2DGeometry g =
        ResolveConv2D(input.shape(), filter_shape, stride, padding);
    CheckGradOutShape(g, grad_out, "Conv2DBackpropFilter");
    Tensor grad_w(DType::kFloat32, filter_shape);

    // gW [K, oc] = P^T [K, M] * gOut [M, oc]: the whole batch is the
    // reduction dimension of a single GEMM, accumulated in the
    // engine's fixed KC order.
    const std::int64_t M = g.batch * g.out_h * g.out_w;
    const std::int64_t K = g.k_h * g.k_w * g.in_c;
    GemmPanels(K, g.out_c, M, Im2colPackAT(input.data<float>(), g),
               StridedPackB(grad_out.data<float>(), g.out_c, 1, g.out_c),
               grad_w.data<float>(), /*accumulate=*/false, pool);
    return grad_w;
}

}  // namespace fathom::kernels
