#include "kernels/conv2d.h"

#include <algorithm>
#include <stdexcept>

namespace fathom::kernels {

Conv2DGeometry
ResolveConv2D(const Shape& input, const Shape& filter, std::int64_t stride,
              Padding padding)
{
    if (input.rank() != 4) {
        throw std::invalid_argument("Conv2D input must be NHWC rank-4, got " +
                                    input.ToString());
    }
    if (filter.rank() != 4) {
        throw std::invalid_argument(
            "Conv2D filter must be [kh, kw, c, oc] rank-4, got " +
            filter.ToString());
    }
    if (input.dim(3) != filter.dim(2)) {
        throw std::invalid_argument(
            "Conv2D channel mismatch: input " + input.ToString() +
            " vs filter " + filter.ToString());
    }
    if (stride < 1) {
        throw std::invalid_argument("Conv2D stride must be >= 1");
    }

    Conv2DGeometry g;
    g.batch = input.dim(0);
    g.in_h = input.dim(1);
    g.in_w = input.dim(2);
    g.in_c = input.dim(3);
    g.k_h = filter.dim(0);
    g.k_w = filter.dim(1);
    g.out_c = filter.dim(3);
    g.stride = stride;

    if (padding == Padding::kSame) {
        g.out_h = (g.in_h + stride - 1) / stride;
        g.out_w = (g.in_w + stride - 1) / stride;
        const std::int64_t pad_h =
            std::max<std::int64_t>((g.out_h - 1) * stride + g.k_h - g.in_h, 0);
        const std::int64_t pad_w =
            std::max<std::int64_t>((g.out_w - 1) * stride + g.k_w - g.in_w, 0);
        g.pad_top = pad_h / 2;
        g.pad_left = pad_w / 2;
    } else {
        if (g.in_h < g.k_h || g.in_w < g.k_w) {
            throw std::invalid_argument("Conv2D VALID: filter larger than input");
        }
        g.out_h = (g.in_h - g.k_h) / stride + 1;
        g.out_w = (g.in_w - g.k_w) / stride + 1;
        g.pad_top = 0;
        g.pad_left = 0;
    }
    return g;
}

Tensor
Conv2D(const Tensor& input, const Tensor& filter, std::int64_t stride,
       Padding padding, parallel::ThreadPool& pool)
{
    const Conv2DGeometry g =
        ResolveConv2D(input.shape(), filter.shape(), stride, padding);
    Tensor out = Tensor::Zeros(Shape{g.batch, g.out_h, g.out_w, g.out_c});

    const float* in = input.data<float>();
    const float* w = filter.data<float>();
    float* o = out.data<float>();

    const std::int64_t in_row = g.in_w * g.in_c;
    const std::int64_t in_img = g.in_h * in_row;
    const std::int64_t out_row = g.out_w * g.out_c;
    const std::int64_t out_img = g.out_h * out_row;
    const std::int64_t w_kw = g.in_c * g.out_c;
    const std::int64_t w_kh = g.k_w * w_kw;

    // Parallelize over (batch, output row) pairs: large trip count for
    // image workloads, cheap to split.
    pool.ParallelFor(
        g.batch * g.out_h, /*grain=*/1,
        [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t n = r / g.out_h;
                const std::int64_t oh = r % g.out_h;
                const std::int64_t ih0 = oh * g.stride - g.pad_top;
                for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
                    const std::int64_t iw0 = ow * g.stride - g.pad_left;
                    float* optr = o + n * out_img + oh * out_row + ow * g.out_c;
                    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                        const std::int64_t ih = ih0 + kh;
                        if (ih < 0 || ih >= g.in_h) {
                            continue;
                        }
                        for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                            const std::int64_t iw = iw0 + kw;
                            if (iw < 0 || iw >= g.in_w) {
                                continue;
                            }
                            const float* iptr =
                                in + n * in_img + ih * in_row + iw * g.in_c;
                            const float* wptr = w + kh * w_kh + kw * w_kw;
                            for (std::int64_t c = 0; c < g.in_c; ++c) {
                                const float iv = iptr[c];
                                if (iv == 0.0f) {
                                    continue;
                                }
                                const float* wrow = wptr + c * g.out_c;
                                for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                                    optr[oc] += iv * wrow[oc];
                                }
                            }
                        }
                    }
                }
            }
        });
    return out;
}

Tensor
Conv2DBackpropInput(const Shape& input_shape, const Tensor& filter,
                    const Tensor& grad_out, std::int64_t stride,
                    Padding padding, parallel::ThreadPool& pool)
{
    const Conv2DGeometry g =
        ResolveConv2D(input_shape, filter.shape(), stride, padding);
    if (grad_out.shape() != Shape({g.batch, g.out_h, g.out_w, g.out_c})) {
        throw std::invalid_argument("Conv2DBackpropInput: grad_out shape " +
                                    grad_out.shape().ToString() +
                                    " inconsistent with geometry");
    }
    Tensor grad_in = Tensor::Zeros(input_shape);

    const float* w = filter.data<float>();
    const float* go = grad_out.data<float>();
    float* gi = grad_in.data<float>();

    const std::int64_t in_row = g.in_w * g.in_c;
    const std::int64_t in_img = g.in_h * in_row;
    const std::int64_t out_row = g.out_w * g.out_c;
    const std::int64_t out_img = g.out_h * out_row;
    const std::int64_t w_kw = g.in_c * g.out_c;
    const std::int64_t w_kh = g.k_w * w_kw;

    // Gather formulation over input rows: each (n, ih) pair is written
    // by exactly one chunk, so no synchronization is needed.
    pool.ParallelFor(
        g.batch * g.in_h, /*grain=*/1,
        [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t n = r / g.in_h;
                const std::int64_t ih = r % g.in_h;
                for (std::int64_t iw = 0; iw < g.in_w; ++iw) {
                    float* giptr = gi + n * in_img + ih * in_row + iw * g.in_c;
                    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                        // ih = oh*stride - pad_top + kh  =>  oh as below.
                        const std::int64_t oh_num = ih + g.pad_top - kh;
                        if (oh_num < 0 || oh_num % g.stride != 0) {
                            continue;
                        }
                        const std::int64_t oh = oh_num / g.stride;
                        if (oh >= g.out_h) {
                            continue;
                        }
                        for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                            const std::int64_t ow_num = iw + g.pad_left - kw;
                            if (ow_num < 0 || ow_num % g.stride != 0) {
                                continue;
                            }
                            const std::int64_t ow = ow_num / g.stride;
                            if (ow >= g.out_w) {
                                continue;
                            }
                            const float* goptr =
                                go + n * out_img + oh * out_row + ow * g.out_c;
                            const float* wptr = w + kh * w_kh + kw * w_kw;
                            for (std::int64_t c = 0; c < g.in_c; ++c) {
                                const float* wrow = wptr + c * g.out_c;
                                float acc = 0.0f;
                                for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                                    acc += wrow[oc] * goptr[oc];
                                }
                                giptr[c] += acc;
                            }
                        }
                    }
                }
            }
        });
    return grad_in;
}

Tensor
Conv2DBackpropFilter(const Tensor& input, const Shape& filter_shape,
                     const Tensor& grad_out, std::int64_t stride,
                     Padding padding, parallel::ThreadPool& pool)
{
    const Conv2DGeometry g =
        ResolveConv2D(input.shape(), filter_shape, stride, padding);
    if (grad_out.shape() != Shape({g.batch, g.out_h, g.out_w, g.out_c})) {
        throw std::invalid_argument("Conv2DBackpropFilter: grad_out shape " +
                                    grad_out.shape().ToString() +
                                    " inconsistent with geometry");
    }
    Tensor grad_w = Tensor::Zeros(filter_shape);

    const float* in = input.data<float>();
    const float* go = grad_out.data<float>();
    float* gw = grad_w.data<float>();

    const std::int64_t in_row = g.in_w * g.in_c;
    const std::int64_t in_img = g.in_h * in_row;
    const std::int64_t out_row = g.out_w * g.out_c;
    const std::int64_t out_img = g.out_h * out_row;
    const std::int64_t w_kw = g.in_c * g.out_c;
    const std::int64_t w_kh = g.k_w * w_kw;

    // Each (kh, kw) filter tap is an independent accumulation; taps are
    // the parallel unit so no chunk writes another's slice.
    pool.ParallelFor(
        g.k_h * g.k_w, /*grain=*/1,
        [&](std::int64_t t0, std::int64_t t1) {
            for (std::int64_t t = t0; t < t1; ++t) {
                const std::int64_t kh = t / g.k_w;
                const std::int64_t kw = t % g.k_w;
                float* gwtap = gw + kh * w_kh + kw * w_kw;
                for (std::int64_t n = 0; n < g.batch; ++n) {
                    for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
                        const std::int64_t ih = oh * g.stride - g.pad_top + kh;
                        if (ih < 0 || ih >= g.in_h) {
                            continue;
                        }
                        for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
                            const std::int64_t iw =
                                ow * g.stride - g.pad_left + kw;
                            if (iw < 0 || iw >= g.in_w) {
                                continue;
                            }
                            const float* iptr =
                                in + n * in_img + ih * in_row + iw * g.in_c;
                            const float* goptr =
                                go + n * out_img + oh * out_row + ow * g.out_c;
                            for (std::int64_t c = 0; c < g.in_c; ++c) {
                                const float iv = iptr[c];
                                if (iv == 0.0f) {
                                    continue;
                                }
                                float* gwrow = gwtap + c * g.out_c;
                                for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                                    gwrow[oc] += iv * goptr[oc];
                                }
                            }
                        }
                    }
                }
            }
        });
    return grad_w;
}

}  // namespace fathom::kernels
