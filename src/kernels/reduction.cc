#include "kernels/reduction.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace fathom::kernels {

Tensor
Reduce(const Tensor& input, ReduceOp op, const std::vector<int>& axes,
       bool keep_dims, parallel::ThreadPool& pool)
{
    const Shape& in_shape = input.shape();
    const int rank = in_shape.rank();

    std::set<int> reduce_axes;
    if (axes.empty()) {
        for (int i = 0; i < rank; ++i) {
            reduce_axes.insert(i);
        }
    } else {
        for (int a : axes) {
            const int norm = a < 0 ? a + rank : a;
            if (norm < 0 || norm >= rank) {
                throw std::invalid_argument("Reduce: axis out of range");
            }
            reduce_axes.insert(norm);
        }
    }

    std::vector<std::int64_t> out_dims;
    for (int i = 0; i < rank; ++i) {
        if (reduce_axes.count(i)) {
            if (keep_dims) {
                out_dims.push_back(1);
            }
        } else {
            out_dims.push_back(in_shape.dim(i));
        }
    }
    const Shape out_shape(out_dims);

    // Map each input element to its output cell via per-axis strides
    // (stride 0 on reduced axes).
    std::vector<std::int64_t> out_strides_by_axis(
        static_cast<std::size_t>(rank), 0);
    {
        std::int64_t stride = 1;
        for (int i = rank - 1; i >= 0; --i) {
            if (!reduce_axes.count(i)) {
                out_strides_by_axis[static_cast<std::size_t>(i)] = stride;
                stride *= in_shape.dim(i);
            }
        }
    }
    std::vector<std::int64_t> in_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        in_strides[static_cast<std::size_t>(i)] =
            in_strides[static_cast<std::size_t>(i + 1)] * in_shape.dim(i + 1);
    }

    Tensor out = Tensor::Full(
        out_shape, op == ReduceOp::kMax
                       ? -std::numeric_limits<float>::infinity()
                       : 0.0f);
    const float* in = input.data<float>();
    float* o = out.data<float>();
    const std::int64_t n = input.num_elements();
    const std::int64_t out_n = out.num_elements();

    // Sum/mean accumulate in double: a float accumulator loses low
    // bits once the running sum dwarfs the addends, which is routine
    // for the million-element activation reductions in vgg/residual.
    std::vector<double> acc;
    if (op != ReduceOp::kMax) {
        acc.assign(static_cast<std::size_t>(out_n), 0.0);
    }
    for (std::int64_t flat = 0; flat < n; ++flat) {
        std::int64_t rem = flat;
        std::int64_t off = 0;
        for (int d = 0; d < rank; ++d) {
            const std::int64_t id = rem / in_strides[static_cast<std::size_t>(d)];
            rem -= id * in_strides[static_cast<std::size_t>(d)];
            off += id * out_strides_by_axis[static_cast<std::size_t>(d)];
        }
        if (op == ReduceOp::kMax) {
            o[off] = std::max(o[off], in[flat]);
        } else {
            acc[static_cast<std::size_t>(off)] +=
                static_cast<double>(in[flat]);
        }
    }

    if (op != ReduceOp::kMax) {
        std::int64_t count = 1;
        for (int a : reduce_axes) {
            count *= in_shape.dim(a);
        }
        const double scale =
            op == ReduceOp::kMean && count > 0 ? 1.0 / count : 1.0;
        for (std::int64_t i = 0; i < out_n; ++i) {
            o[i] = static_cast<float>(acc[static_cast<std::size_t>(i)] *
                                      scale);
        }
    }
    (void)pool;
    return out;
}

namespace {

/** @return (rows, cols) flattening all but the last dimension. */
std::pair<std::int64_t, std::int64_t>
RowsCols(const Shape& s)
{
    if (s.rank() < 1) {
        throw std::invalid_argument("softmax-family kernels need rank >= 1");
    }
    const std::int64_t cols = s.dim(-1);
    return {s.num_elements() / std::max<std::int64_t>(cols, 1), cols};
}

}  // namespace

Tensor
Softmax(const Tensor& logits, parallel::ThreadPool& pool)
{
    const auto [rows, cols] = RowsCols(logits.shape());
    Tensor out(DType::kFloat32, logits.shape());
    const float* in = logits.data<float>();
    float* o = out.data<float>();
    pool.ParallelFor(rows, /*grain=*/4, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const float* row = in + r * cols;
            float* orow = o + r * cols;
            float m = -std::numeric_limits<float>::infinity();
            for (std::int64_t c = 0; c < cols; ++c) {
                m = std::max(m, row[c]);
            }
            // Double accumulator: wide softmax rows (vocabulary-sized
            // logits) otherwise lose precision in the normalizer.
            double sum = 0.0;
            for (std::int64_t c = 0; c < cols; ++c) {
                orow[c] = std::exp(row[c] - m);
                sum += static_cast<double>(orow[c]);
            }
            const float inv = static_cast<float>(1.0 / sum);
            for (std::int64_t c = 0; c < cols; ++c) {
                orow[c] *= inv;
            }
        }
    });
    return out;
}

Tensor
LogSoftmax(const Tensor& logits, parallel::ThreadPool& pool)
{
    const auto [rows, cols] = RowsCols(logits.shape());
    Tensor out(DType::kFloat32, logits.shape());
    const float* in = logits.data<float>();
    float* o = out.data<float>();
    pool.ParallelFor(rows, /*grain=*/4, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const float* row = in + r * cols;
            float* orow = o + r * cols;
            float m = -std::numeric_limits<float>::infinity();
            for (std::int64_t c = 0; c < cols; ++c) {
                m = std::max(m, row[c]);
            }
            double sum = 0.0;
            for (std::int64_t c = 0; c < cols; ++c) {
                sum += static_cast<double>(std::exp(row[c] - m));
            }
            const float log_sum = static_cast<float>(std::log(sum)) + m;
            for (std::int64_t c = 0; c < cols; ++c) {
                orow[c] = row[c] - log_sum;
            }
        }
    });
    return out;
}

Tensor
ArgMaxLastDim(const Tensor& input, parallel::ThreadPool& pool)
{
    const auto [rows, cols] = RowsCols(input.shape());
    std::vector<std::int64_t> out_dims = input.shape().dims();
    out_dims.pop_back();
    Tensor out(DType::kInt32, Shape(out_dims));
    const float* in = input.data<float>();
    std::int32_t* o = out.data<std::int32_t>();
    pool.ParallelFor(rows, /*grain=*/16,
                     [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const float* row = in + r * cols;
            std::int64_t best = 0;
            for (std::int64_t c = 1; c < cols; ++c) {
                if (row[c] > row[best]) {
                    best = c;
                }
            }
            o[r] = static_cast<std::int32_t>(best);
        }
    });
    return out;
}

Tensor
Tile(const Tensor& input, const std::vector<std::int64_t>& multiples,
     parallel::ThreadPool& pool)
{
    const Shape& in_shape = input.shape();
    const int rank = in_shape.rank();
    if (static_cast<int>(multiples.size()) != rank) {
        throw std::invalid_argument("Tile: multiples rank mismatch");
    }
    std::vector<std::int64_t> out_dims(static_cast<std::size_t>(rank));
    for (int i = 0; i < rank; ++i) {
        if (multiples[static_cast<std::size_t>(i)] < 1) {
            throw std::invalid_argument("Tile: multiples must be >= 1");
        }
        out_dims[static_cast<std::size_t>(i)] =
            in_shape.dim(i) * multiples[static_cast<std::size_t>(i)];
    }
    const Shape out_shape(out_dims);
    Tensor out(DType::kFloat32, out_shape);
    const float* in = input.data<float>();
    float* o = out.data<float>();

    std::vector<std::int64_t> in_strides(static_cast<std::size_t>(rank), 1);
    std::vector<std::int64_t> out_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        in_strides[static_cast<std::size_t>(i)] =
            in_strides[static_cast<std::size_t>(i + 1)] * in_shape.dim(i + 1);
        out_strides[static_cast<std::size_t>(i)] =
            out_strides[static_cast<std::size_t>(i + 1)] * out_shape.dim(i + 1);
    }

    const std::int64_t n = out_shape.num_elements();
    pool.ParallelFor(n, /*grain=*/2048, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t flat = i0; flat < i1; ++flat) {
            std::int64_t rem = flat;
            std::int64_t src = 0;
            for (int d = 0; d < rank; ++d) {
                const std::int64_t od =
                    rem / out_strides[static_cast<std::size_t>(d)];
                rem -= od * out_strides[static_cast<std::size_t>(d)];
                src += (od % in_shape.dim(d)) *
                       in_strides[static_cast<std::size_t>(d)];
            }
            o[flat] = in[src];
        }
    });
    return out;
}

Tensor
TileGrad(const Tensor& grad_out, const Shape& input_shape,
         const std::vector<std::int64_t>& multiples,
         parallel::ThreadPool& pool)
{
    const int rank = input_shape.rank();
    if (static_cast<int>(multiples.size()) != rank) {
        throw std::invalid_argument("TileGrad: multiples rank mismatch");
    }
    Tensor grad_in = Tensor::Zeros(input_shape);
    const Shape& out_shape = grad_out.shape();
    const float* go = grad_out.data<float>();
    float* gi = grad_in.data<float>();

    std::vector<std::int64_t> in_strides(static_cast<std::size_t>(rank), 1);
    std::vector<std::int64_t> out_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        in_strides[static_cast<std::size_t>(i)] =
            in_strides[static_cast<std::size_t>(i + 1)] * input_shape.dim(i + 1);
        out_strides[static_cast<std::size_t>(i)] =
            out_strides[static_cast<std::size_t>(i + 1)] * out_shape.dim(i + 1);
    }
    const std::int64_t n = out_shape.num_elements();
    for (std::int64_t flat = 0; flat < n; ++flat) {
        std::int64_t rem = flat;
        std::int64_t dst = 0;
        for (int d = 0; d < rank; ++d) {
            const std::int64_t od = rem / out_strides[static_cast<std::size_t>(d)];
            rem -= od * out_strides[static_cast<std::size_t>(d)];
            dst += (od % input_shape.dim(d)) *
                   in_strides[static_cast<std::size_t>(d)];
        }
        gi[dst] += go[flat];
    }
    (void)pool;
    return grad_in;
}

}  // namespace fathom::kernels
