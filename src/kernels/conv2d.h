/**
 * @file
 * 2-D convolution and its two backward passes.
 *
 * Layout is NHWC (batch, height, width, channels) with filters in
 * [kh, kw, in_channels, out_channels], matching TensorFlow's defaults.
 * The paper's convolutional workloads (alexnet, vgg, residual, deepq)
 * are dominated by these three kernels, and the asymmetry between one
 * forward reduction and two backward reductions is what makes training
 * relatively more expensive for conv nets (paper Sec. V-D).
 *
 * All three kernels are lowered onto the blocked, packed GEMM engine
 * (kernels/gemm.h) through the im2col view of the convolution. The
 * forward pass and the filter gradient pack their patch-matrix panels
 * directly from the padded image (no materialized im2col); the input
 * gradient runs one GEMM into a pool-recycled column buffer and
 * col2im-gathers it back onto the image.
 */
#ifndef FATHOM_KERNELS_CONV2D_H
#define FATHOM_KERNELS_CONV2D_H

#include <cstdint>

#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/** Padding policy, mirroring TensorFlow's SAME/VALID. */
enum class Padding {
    kSame,   ///< output size = ceil(input / stride), zero-padded.
    kValid,  ///< no padding; output size = floor((in - k) / stride) + 1.
};

/** Static geometry of a convolution, resolved from shapes + attrs. */
struct Conv2DGeometry {
    std::int64_t batch, in_h, in_w, in_c;
    std::int64_t k_h, k_w, out_c;
    std::int64_t stride;
    std::int64_t out_h, out_w;
    std::int64_t pad_top, pad_left;
};

/**
 * Resolves output size and padding for the given input/filter shapes.
 * @throws std::invalid_argument on malformed shapes.
 */
Conv2DGeometry ResolveConv2D(const Shape& input, const Shape& filter,
                             std::int64_t stride, Padding padding);

/**
 * Forward convolution.
 * @param input  [n, h, w, c] float32.
 * @param filter [kh, kw, c, oc] float32.
 * @return       [n, oh, ow, oc] float32.
 */
Tensor Conv2D(const Tensor& input, const Tensor& filter, std::int64_t stride,
              Padding padding, parallel::ThreadPool& pool);

/**
 * Gradient with respect to the input (the "deconvolution").
 * @param input_shape shape of the original input.
 * @param filter      the forward filter.
 * @param grad_out    gradient flowing into the forward output.
 */
Tensor Conv2DBackpropInput(const Shape& input_shape, const Tensor& filter,
                           const Tensor& grad_out, std::int64_t stride,
                           Padding padding, parallel::ThreadPool& pool);

/**
 * Gradient with respect to the filter.
 * @param input        the original forward input.
 * @param filter_shape shape of the forward filter.
 * @param grad_out     gradient flowing into the forward output.
 */
Tensor Conv2DBackpropFilter(const Tensor& input, const Shape& filter_shape,
                            const Tensor& grad_out, std::int64_t stride,
                            Padding padding, parallel::ThreadPool& pool);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_CONV2D_H
