#include "kernels/matmul.h"

#include <stdexcept>

#include "kernels/gemm.h"

namespace fathom::kernels {

namespace {

/** Resolves the logical (rows, cols) of a possibly-transposed matrix. */
void
LogicalDims(const Tensor& t, bool transpose, std::int64_t* rows,
            std::int64_t* cols)
{
    if (t.shape().rank() != 2) {
        throw std::invalid_argument("MatMul operand must be rank-2, got " +
                                    t.shape().ToString());
    }
    *rows = transpose ? t.shape().dim(1) : t.shape().dim(0);
    *cols = transpose ? t.shape().dim(0) : t.shape().dim(1);
}

}  // namespace

std::int64_t
MatMulParallelWork(const Tensor& a, bool transpose_a)
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    LogicalDims(a, transpose_a, &m, &k);
    return m;
}

Tensor
MatMul(const Tensor& a, const Tensor& b, bool transpose_a, bool transpose_b,
       parallel::ThreadPool& pool)
{
    std::int64_t m = 0;
    std::int64_t ka = 0;
    std::int64_t kb = 0;
    std::int64_t n = 0;
    LogicalDims(a, transpose_a, &m, &ka);
    LogicalDims(b, transpose_b, &kb, &n);
    if (ka != kb) {
        throw std::invalid_argument(
            "MatMul inner dimensions differ: " + a.shape().ToString() +
            (transpose_a ? "^T" : "") + " x " + b.shape().ToString() +
            (transpose_b ? "^T" : ""));
    }
    const std::int64_t k = ka;

    // The engine overwrites every element, so the output starts
    // uninitialized (Gemm zero-fills itself when k == 0).
    Tensor c(DType::kFloat32, Shape{m, n});

    // Element strides of the *logical* (row, col) indices into the
    // physical buffers; transposition is entirely a stride swap.
    const std::int64_t a_rs = transpose_a ? 1 : k;
    const std::int64_t a_cs = transpose_a ? m : 1;
    const std::int64_t b_rs = transpose_b ? 1 : n;
    const std::int64_t b_cs = transpose_b ? k : 1;

    Gemm(m, n, k, a.data<float>(), a_rs, a_cs, b.data<float>(), b_rs, b_cs,
         c.data<float>(), /*accumulate=*/false, pool);
    return c;
}

}  // namespace fathom::kernels
