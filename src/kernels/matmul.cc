#include "kernels/matmul.h"

#include <cstring>
#include <stdexcept>

namespace fathom::kernels {

namespace {

/** Resolves the logical (rows, cols) of a possibly-transposed matrix. */
void
LogicalDims(const Tensor& t, bool transpose, std::int64_t* rows,
            std::int64_t* cols)
{
    if (t.shape().rank() != 2) {
        throw std::invalid_argument("MatMul operand must be rank-2, got " +
                                    t.shape().ToString());
    }
    *rows = transpose ? t.shape().dim(1) : t.shape().dim(0);
    *cols = transpose ? t.shape().dim(0) : t.shape().dim(1);
}

}  // namespace

std::int64_t
MatMulParallelWork(const Tensor& a, bool transpose_a)
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    LogicalDims(a, transpose_a, &m, &k);
    return m;
}

Tensor
MatMul(const Tensor& a, const Tensor& b, bool transpose_a, bool transpose_b,
       parallel::ThreadPool& pool)
{
    std::int64_t m = 0;
    std::int64_t ka = 0;
    std::int64_t kb = 0;
    std::int64_t n = 0;
    LogicalDims(a, transpose_a, &m, &ka);
    LogicalDims(b, transpose_b, &kb, &n);
    if (ka != kb) {
        throw std::invalid_argument(
            "MatMul inner dimensions differ: " + a.shape().ToString() +
            (transpose_a ? "^T" : "") + " x " + b.shape().ToString() +
            (transpose_b ? "^T" : ""));
    }
    const std::int64_t k = ka;

    Tensor c = Tensor::Zeros(Shape{m, n});
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    float* pc = c.data<float>();

    // Element strides of the *logical* (row, col) indices into the
    // physical buffers.
    const std::int64_t a_rs = transpose_a ? 1 : k;
    const std::int64_t a_cs = transpose_a ? m : 1;
    const std::int64_t b_rs = transpose_b ? 1 : n;
    const std::int64_t b_cs = transpose_b ? k : 1;

    // Row-parallel i-k-j order: the inner j loop is contiguous in C and
    // (when B is untransposed) in B, which is the cache-friendly case
    // that dominates the workloads.
    pool.ParallelFor(m, /*grain=*/8, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
            float* crow = pc + i * n;
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float av = pa[i * a_rs + kk * a_cs];
                if (av == 0.0f) {
                    continue;
                }
                const float* brow = pb + kk * b_rs;
                if (b_cs == 1) {
                    for (std::int64_t j = 0; j < n; ++j) {
                        crow[j] += av * brow[j];
                    }
                } else {
                    for (std::int64_t j = 0; j < n; ++j) {
                        crow[j] += av * brow[j * b_cs];
                    }
                }
            }
        }
    });
    return c;
}

}  // namespace fathom::kernels
