/**
 * @file
 * Spatial max/average pooling over NHWC tensors.
 */
#ifndef FATHOM_KERNELS_POOLING_H
#define FATHOM_KERNELS_POOLING_H

#include <cstdint>

#include "kernels/conv2d.h"
#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/** Static geometry of a pooling window sweep. */
struct PoolGeometry {
    std::int64_t batch, in_h, in_w, channels;
    std::int64_t window, stride;
    std::int64_t out_h, out_w;
    std::int64_t pad_top, pad_left;
};

/** Resolves pooled output size for the given input and window. */
PoolGeometry ResolvePool(const Shape& input, std::int64_t window,
                         std::int64_t stride, Padding padding);

/** Max pooling: [n,h,w,c] -> [n,oh,ow,c]. */
Tensor MaxPool(const Tensor& input, std::int64_t window, std::int64_t stride,
               Padding padding, parallel::ThreadPool& pool);

/**
 * Gradient of MaxPool. Recomputes argmaxes from @p input, routing each
 * output gradient to the (first) maximal input within its window.
 */
Tensor MaxPoolGrad(const Tensor& input, const Tensor& grad_out,
                   std::int64_t window, std::int64_t stride, Padding padding,
                   parallel::ThreadPool& pool);

/** Average pooling: [n,h,w,c] -> [n,oh,ow,c]. */
Tensor AvgPool(const Tensor& input, std::int64_t window, std::int64_t stride,
               Padding padding, parallel::ThreadPool& pool);

/** Gradient of AvgPool: spreads each output gradient over its window. */
Tensor AvgPoolGrad(const Shape& input_shape, const Tensor& grad_out,
                   std::int64_t window, std::int64_t stride, Padding padding,
                   parallel::ThreadPool& pool);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_POOLING_H
