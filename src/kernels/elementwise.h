/**
 * @file
 * Elementwise unary/binary maps with NumPy-style broadcasting.
 *
 * The elementwise-arithmetic operation class covers activations and the
 * gate arithmetic inside LSTM cells — the paper singles these out as the
 * reason seq2seq's profile is heavy on elementwise multiplication.
 */
#ifndef FATHOM_KERNELS_ELEMENTWISE_H
#define FATHOM_KERNELS_ELEMENTWISE_H

#include <functional>

#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/**
 * @return the NumPy broadcast of two shapes.
 * @throws std::invalid_argument if the shapes are incompatible.
 */
Shape BroadcastShape(const Shape& a, const Shape& b);

/**
 * Applies @p fn elementwise to a float32 tensor.
 *
 * With @p may_alias the output reuses @p input's buffer instead of
 * allocating (caller must have proven the input value dies here). The
 * aliased and non-aliased paths run the identical loop — each element
 * is read before its slot is written — so results are bit-identical.
 */
Tensor UnaryMap(const Tensor& input, const std::function<float(float)>& fn,
                parallel::ThreadPool& pool, bool may_alias = false);

/**
 * Applies @p fn elementwise to two float32 tensors with broadcasting.
 * The fast same-shape path avoids index arithmetic entirely.
 *
 * With @p may_alias the output reuses @p a's buffer when shapes permit
 * (output shape == a's shape, so every element reads a[i] before
 * writing slot i); otherwise the flag is ignored.
 */
Tensor BinaryMap(const Tensor& a, const Tensor& b,
                 const std::function<float(float, float)>& fn,
                 parallel::ThreadPool& pool, bool may_alias = false);

/**
 * Sums a float32 tensor of @p from shape down to @p to shape by
 * reducing over broadcast dimensions — the adjoint of broadcasting,
 * used by gradients of broadcasting binary ops.
 */
Tensor ReduceToShape(const Tensor& from, const Shape& to,
                     parallel::ThreadPool& pool);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_ELEMENTWISE_H
