/**
 * @file
 * Elementwise unary/binary maps with NumPy-style broadcasting.
 *
 * The elementwise-arithmetic operation class covers activations and the
 * gate arithmetic inside LSTM cells — the paper singles these out as the
 * reason seq2seq's profile is heavy on elementwise multiplication.
 */
#ifndef FATHOM_KERNELS_ELEMENTWISE_H
#define FATHOM_KERNELS_ELEMENTWISE_H

#include <functional>

#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/**
 * @return the NumPy broadcast of two shapes.
 * @throws std::invalid_argument if the shapes are incompatible.
 */
Shape BroadcastShape(const Shape& a, const Shape& b);

/** Applies @p fn elementwise to a float32 tensor. */
Tensor UnaryMap(const Tensor& input, const std::function<float(float)>& fn,
                parallel::ThreadPool& pool);

/**
 * Applies @p fn elementwise to two float32 tensors with broadcasting.
 * The fast same-shape path avoids index arithmetic entirely.
 */
Tensor BinaryMap(const Tensor& a, const Tensor& b,
                 const std::function<float(float, float)>& fn,
                 parallel::ThreadPool& pool);

/**
 * Sums a float32 tensor of @p from shape down to @p to shape by
 * reducing over broadcast dimensions — the adjoint of broadcasting,
 * used by gradients of broadcasting binary ops.
 */
Tensor ReduceToShape(const Tensor& from, const Shape& to,
                     parallel::ThreadPool& pool);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_ELEMENTWISE_H
