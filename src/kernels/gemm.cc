#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#include "telemetry/metrics.h"
#include "tensor/buffer_pool.h"

namespace fathom::kernels {

namespace {

constexpr std::int64_t kMr = kGemmMr;
constexpr std::int64_t kNr = kGemmNr;

/**
 * The register tile: acc[kMr][kNr] = A-strip * B-strip over kc steps.
 *
 * Both panels are packed k-major (strides kMr / kNr), so every load is
 * contiguous. k ascends strictly — this is the fixed per-element
 * reduction order the determinism guarantee rests on, and there is no
 * zero-operand skip: 0 * Inf and 0 * NaN contribute NaN to the
 * accumulator exactly as IEEE arithmetic demands.
 *
 * The accumulator block is expressed as GCC/Clang vector-extension
 * values (element-wise IEEE ops, so numerics match the scalar
 * fallback) because the plain triple loop trips GCC's SLP vectorizer
 * into a shuffle-bound expansion some 50x slower than broadcast-FMA.
 * The vector form keeps all kMr rows resident in registers.
 */
#if defined(__GNUC__) || defined(__clang__)

typedef float Vf16 __attribute__((vector_size(sizeof(float) * kNr)));

inline void
MicroKernel(std::int64_t kc, const float* __restrict__ ap,
            const float* __restrict__ bp, float* __restrict__ acc)
{
    static_assert(kMr == 6 && kNr == 16,
                  "micro-kernel is written for a 6x16 register tile");
    Vf16 c0{}, c1{}, c2{}, c3{}, c4{}, c5{};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* arow = ap + p * kMr;
        Vf16 b;
        __builtin_memcpy(&b, bp + p * kNr, sizeof(b));
        c0 += arow[0] * b;
        c1 += arow[1] * b;
        c2 += arow[2] * b;
        c3 += arow[3] * b;
        c4 += arow[4] * b;
        c5 += arow[5] * b;
    }
    __builtin_memcpy(acc + 0 * kNr, &c0, sizeof(c0));
    __builtin_memcpy(acc + 1 * kNr, &c1, sizeof(c1));
    __builtin_memcpy(acc + 2 * kNr, &c2, sizeof(c2));
    __builtin_memcpy(acc + 3 * kNr, &c3, sizeof(c3));
    __builtin_memcpy(acc + 4 * kNr, &c4, sizeof(c4));
    __builtin_memcpy(acc + 5 * kNr, &c5, sizeof(c5));
}

#else

inline void
MicroKernel(std::int64_t kc, const float* __restrict__ ap,
            const float* __restrict__ bp, float* __restrict__ acc)
{
    float local[kMr * kNr] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* arow = ap + p * kMr;
        const float* brow = bp + p * kNr;
        for (std::int64_t r = 0; r < kMr; ++r) {
            const float av = arow[r];
            for (std::int64_t j = 0; j < kNr; ++j) {
                local[r * kNr + j] += av * brow[j];
            }
        }
    }
    std::memcpy(acc, local, sizeof(local));
}

#endif

void
ZeroFill(float* c, std::int64_t elements, parallel::ThreadPool& pool)
{
    pool.ParallelFor(elements, /*grain=*/1 << 16,
                     [&](std::int64_t i0, std::int64_t i1) {
                         std::memset(c + i0, 0,
                                     static_cast<std::size_t>(i1 - i0) *
                                         sizeof(float));
                     });
}

}  // namespace

PanelPacker
StridedPackA(const float* a, std::int64_t a_rs, std::int64_t a_cs,
             std::int64_t m)
{
    return [a, a_rs, a_cs, m](float* dst, std::int64_t row0, std::int64_t k0,
                              std::int64_t k1) {
        const std::int64_t rows = std::min(kMr, m - row0);
        for (std::int64_t p = k0; p < k1; ++p) {
            float* d = dst + (p - k0) * kMr;
            const float* src = a + row0 * a_rs + p * a_cs;
            std::int64_t r = 0;
            for (; r < rows; ++r) {
                d[r] = src[r * a_rs];
            }
            for (; r < kMr; ++r) {
                d[r] = 0.0f;
            }
        }
    };
}

PanelPacker
StridedPackB(const float* b, std::int64_t b_rs, std::int64_t b_cs,
             std::int64_t n)
{
    return [b, b_rs, b_cs, n](float* dst, std::int64_t col0, std::int64_t k0,
                              std::int64_t k1) {
        const std::int64_t cols = std::min(kNr, n - col0);
        for (std::int64_t p = k0; p < k1; ++p) {
            float* d = dst + (p - k0) * kNr;
            const float* src = b + p * b_rs + col0 * b_cs;
            std::int64_t j = 0;
            for (; j < cols; ++j) {
                d[j] = src[j * b_cs];
            }
            for (; j < kNr; ++j) {
                d[j] = 0.0f;
            }
        }
    };
}

std::int64_t
GemmTileCount(std::int64_t m, std::int64_t n)
{
    if (m <= 0 || n <= 0) {
        return 0;
    }
    return ((m + kGemmMc - 1) / kGemmMc) * ((n + kGemmNc - 1) / kGemmNc);
}

void
GemmPanels(std::int64_t m, std::int64_t n, std::int64_t k,
           const PanelPacker& pack_a, const PanelPacker& pack_b, float* c,
           bool accumulate, parallel::ThreadPool& pool)
{
    if (m <= 0 || n <= 0) {
        return;
    }
    if (k <= 0) {
        // An empty reduction is a zero product, not a no-op.
        if (!accumulate) {
            ZeroFill(c, m * n, pool);
        }
        return;
    }

    // Pack buffers come from the global size-bucketed pool: after the
    // first step of a training run these are recycled blocks, so the
    // steady-state GEMM performs no fresh allocation. The metrics pair
    // gemm.pack_acquires / gemm.pack_pool_hits verifies exactly that
    // claim — a warm run should show the two converging.
    const std::int64_t n_strips = (n + kNr - 1) / kNr;
    const std::int64_t a_strip_cap =
        (std::min(m, kGemmMBlock) + kMr - 1) / kMr;
    bool b_hit = false;
    bool a_hit = false;
    auto b_block = BufferPool::Global().Allocate(
        static_cast<std::size_t>(n_strips * kNr * kGemmKc) * sizeof(float),
        &b_hit);
    auto a_block = BufferPool::Global().Allocate(
        static_cast<std::size_t>(a_strip_cap * kMr * kGemmKc) *
            sizeof(float),
        &a_hit);
    if (telemetry::MetricsEnabled()) {
        static telemetry::Counter& acquires =
            telemetry::MetricsRegistry::Global().GetCounter(
                "gemm.pack_acquires");
        static telemetry::Counter& hits =
            telemetry::MetricsRegistry::Global().GetCounter(
                "gemm.pack_pool_hits");
        acquires.Add(2);
        hits.Add(static_cast<std::uint64_t>(b_hit) +
                 static_cast<std::uint64_t>(a_hit));
    }
    float* bp_base = reinterpret_cast<float*>(b_block.get());
    float* ap_base = reinterpret_cast<float*>(a_block.get());

    // Serial KC loop outermost: each output element accumulates its
    // KC-block partial sums in ascending pc order no matter how tiles
    // are scheduled, which is what keeps results thread-count
    // independent.
    for (std::int64_t pc = 0; pc < k; pc += kGemmKc) {
        const std::int64_t kc = std::min(kGemmKc, k - pc);

        pool.ParallelFor(n_strips, /*grain=*/4,
                         [&](std::int64_t s0, std::int64_t s1) {
                             for (std::int64_t s = s0; s < s1; ++s) {
                                 pack_b(bp_base + s * kNr * kc, s * kNr, pc,
                                        pc + kc);
                             }
                         });

        for (std::int64_t mb = 0; mb < m; mb += kGemmMBlock) {
            const std::int64_t mrows = std::min(kGemmMBlock, m - mb);
            const std::int64_t a_strips = (mrows + kMr - 1) / kMr;
            pool.ParallelFor(a_strips, /*grain=*/4,
                             [&](std::int64_t s0, std::int64_t s1) {
                                 for (std::int64_t s = s0; s < s1; ++s) {
                                     pack_a(ap_base + s * kMr * kc,
                                            mb + s * kMr, pc, pc + kc);
                                 }
                             });

            const bool add_into = accumulate || pc > 0;
            pool.ParallelFor2D(
                mrows, n, kGemmMc, kGemmNc,
                [&](std::int64_t r0, std::int64_t r1, std::int64_t c0,
                    std::int64_t c1) {
                    float acc[kMr * kNr];
                    // jr outer so each packed B strip stays hot across
                    // the column of A strips it meets.
                    for (std::int64_t jr = c0; jr < c1; jr += kNr) {
                        const std::int64_t nr = std::min(kNr, c1 - jr);
                        const float* bp = bp_base + (jr / kNr) * kNr * kc;
                        for (std::int64_t ir = r0; ir < r1; ir += kMr) {
                            const std::int64_t mr = std::min(kMr, r1 - ir);
                            const float* ap =
                                ap_base + (ir / kMr) * kMr * kc;
                            MicroKernel(kc, ap, bp, acc);
                            // Edge tiles compute the full register
                            // block against zero-padded panel lanes but
                            // store only the live mr x nr corner.
                            float* cb = c + (mb + ir) * n + jr;
                            if (add_into) {
                                for (std::int64_t r = 0; r < mr; ++r) {
                                    for (std::int64_t j = 0; j < nr; ++j) {
                                        cb[r * n + j] += acc[r * kNr + j];
                                    }
                                }
                            } else {
                                for (std::int64_t r = 0; r < mr; ++r) {
                                    for (std::int64_t j = 0; j < nr; ++j) {
                                        cb[r * n + j] = acc[r * kNr + j];
                                    }
                                }
                            }
                        }
                    }
                });
        }
    }
}

void
Gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
     std::int64_t a_rs, std::int64_t a_cs, const float* b, std::int64_t b_rs,
     std::int64_t b_cs, float* c, bool accumulate,
     parallel::ThreadPool& pool)
{
    GemmPanels(m, n, k, StridedPackA(a, a_rs, a_cs, m),
               StridedPackB(b, b_rs, b_cs, n), c, accumulate, pool);
}

}  // namespace fathom::kernels
