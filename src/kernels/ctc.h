/**
 * @file
 * Connectionist temporal classification (CTC) loss.
 *
 * CTC (Graves et al. 2006) lets Deep Speech learn from unsegmented
 * transcriptions; the paper's Fig. 3 shows it as the only significant
 * non-MatMul computation in the speech workload. Implemented with the
 * standard log-domain forward-backward recursion over the
 * blank-interleaved label sequence.
 */
#ifndef FATHOM_KERNELS_CTC_H
#define FATHOM_KERNELS_CTC_H

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/** Result of one CTC evaluation. */
struct CtcResult {
    float loss;          ///< -log P(labels | logits).
    Tensor grad_logits;  ///< gradient w.r.t. the raw (pre-softmax) logits.
};

/**
 * Computes the CTC loss and its gradient for one sequence.
 *
 * @param logits  raw per-frame class scores, float32 [time, num_classes].
 * @param labels  target label sequence (values in [0, num_classes),
 *                excluding the blank); may be empty.
 * @param blank   index of the blank symbol.
 * @param pool    thread pool for the log-softmax over the logits (the
 *                executor's intra-op pool, so CTC honors the Fig. 6
 *                thread knob); the lattice recursion itself is serial.
 *
 * The gradient uses the classical identity
 *   dL/dy(t,k) = softmax(y)(t,k) - sum_{s : l'_s = k} gamma(t,s)
 * where gamma is the alignment posterior from forward-backward.
 *
 * @throws std::invalid_argument if the labels cannot be emitted within
 * the given number of frames (|l'| > 2T rule) or indices are invalid.
 */
CtcResult CtcLoss(const Tensor& logits,
                  const std::vector<std::int32_t>& labels,
                  std::int32_t blank, parallel::ThreadPool& pool);

/**
 * Reference implementation by explicit enumeration of all alignments.
 * Exponential in time; for testing only (time * classes <= ~20^6).
 */
float CtcLossBruteForce(const Tensor& logits,
                        const std::vector<std::int32_t>& labels,
                        std::int32_t blank, parallel::ThreadPool& pool);

/**
 * Greedy (best-path) CTC decoding: per-frame argmax, collapse repeats,
 * strip blanks. Used by inference paths and examples.
 */
std::vector<std::int32_t> CtcGreedyDecode(const Tensor& logits,
                                          std::int32_t blank);

/**
 * Prefix beam-search CTC decoding (Hannun et al. 2014's decoder,
 * without a language model): maintains the @p beam_width most probable
 * *label prefixes*, correctly summing probability over all alignments
 * of each prefix — unlike best-path decoding, which scores single
 * alignments.
 *
 * @param logits raw per-frame scores [time, num_classes].
 * @return the most probable label sequence.
 */
std::vector<std::int32_t> CtcBeamSearchDecode(const Tensor& logits,
                                              std::int32_t blank,
                                              int beam_width,
                                              parallel::ThreadPool& pool);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_CTC_H
