/**
 * @file
 * Data-movement kernels: transpose, concat, slice, gather, scatter-add,
 * one-hot, pad.
 *
 * These form the paper's "Data Movement" operation class — individually
 * cheap, but collectively significant in attention-based models
 * (seq2seq) and memory networks, and resistant to parallel speedup.
 */
#ifndef FATHOM_KERNELS_DATA_MOVEMENT_H
#define FATHOM_KERNELS_DATA_MOVEMENT_H

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/**
 * Permutes tensor dimensions: out[i_perm[0], ...] = in[i_0, ...].
 * @param perm a permutation of [0, rank).
 */
Tensor Transpose(const Tensor& input, const std::vector<int>& perm,
                 parallel::ThreadPool& pool);

/** Concatenates float32 tensors along @p axis. */
Tensor Concat(const std::vector<Tensor>& inputs, int axis,
              parallel::ThreadPool& pool);

/**
 * Extracts a dense sub-block: out = in[begin[0]:begin[0]+size[0], ...].
 * size[i] == -1 means "to the end of that dimension".
 */
Tensor Slice(const Tensor& input, const std::vector<std::int64_t>& begin,
             const std::vector<std::int64_t>& size,
             parallel::ThreadPool& pool);

/**
 * Embedding-style row gather: params [v, ...inner], indices int32
 * [outer...] -> output [outer..., ...inner].
 */
Tensor Gather(const Tensor& params, const Tensor& indices,
              parallel::ThreadPool& pool);

/**
 * Adjoint of Gather: accumulates rows of @p grad_out into a zero tensor
 * of @p params_shape at positions given by @p indices.
 */
Tensor GatherGrad(const Shape& params_shape, const Tensor& indices,
                  const Tensor& grad_out, parallel::ThreadPool& pool);

/**
 * One-hot encoding: int32 indices [outer...] -> float32
 * [outer..., depth] with on_value at each index and off_value elsewhere.
 * Out-of-range indices produce an all-off row (TF semantics).
 */
Tensor OneHot(const Tensor& indices, std::int64_t depth, float on_value,
              float off_value, parallel::ThreadPool& pool);

/** Zero-pads @p input by (before, after) element counts per dimension. */
Tensor Pad(const Tensor& input,
           const std::vector<std::pair<std::int64_t, std::int64_t>>& paddings,
           parallel::ThreadPool& pool);

/** Adjoint of Pad: slices the interior region back out. */
Tensor PadGrad(const Tensor& grad_out,
               const std::vector<std::pair<std::int64_t, std::int64_t>>& paddings,
               parallel::ThreadPool& pool);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_DATA_MOVEMENT_H
