/**
 * @file
 * Normalization kernels: local response normalization (alexnet) and
 * batch normalization (residual networks).
 */
#ifndef FATHOM_KERNELS_NORMALIZATION_H
#define FATHOM_KERNELS_NORMALIZATION_H

#include <cstdint>

#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/** Hyperparameters of local response normalization (TF semantics). */
struct LrnParams {
    std::int64_t depth_radius = 2;  ///< half-window across channels.
    float bias = 1.0f;
    float alpha = 1e-4f;
    float beta = 0.75f;
};

/**
 * Cross-channel LRN over the last dimension:
 *   out[i] = in[i] / (bias + alpha * sum_{|j-i|<=r} in[j]^2)^beta
 */
Tensor Lrn(const Tensor& input, const LrnParams& params,
           parallel::ThreadPool& pool);

/** Exact gradient of Lrn with respect to its input. */
Tensor LrnGrad(const Tensor& input, const Tensor& grad_out,
               const LrnParams& params, parallel::ThreadPool& pool);

/** Forward results of batch normalization needed by the backward pass. */
struct BatchNormResult {
    Tensor output;  ///< normalized, scaled, shifted activations.
    Tensor mean;    ///< per-channel batch mean [c].
    Tensor inv_std; ///< per-channel 1/sqrt(var + eps) [c].
};

/**
 * Batch normalization over all dimensions except the last (channel)
 * dimension, using batch statistics:
 *   y = gamma * (x - mean) / sqrt(var + eps) + beta
 *
 * @param gamma per-channel scale [c].
 * @param beta  per-channel shift [c].
 */
BatchNormResult BatchNorm(const Tensor& input, const Tensor& gamma,
                          const Tensor& beta, float epsilon,
                          parallel::ThreadPool& pool);

/** Gradients of BatchNorm. */
struct BatchNormGrads {
    Tensor grad_input;
    Tensor grad_gamma;
    Tensor grad_beta;
};

/**
 * Backward pass of batch normalization given the forward statistics.
 */
BatchNormGrads BatchNormGrad(const Tensor& input, const Tensor& gamma,
                             const Tensor& mean, const Tensor& inv_std,
                             const Tensor& grad_out,
                             parallel::ThreadPool& pool);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_NORMALIZATION_H
