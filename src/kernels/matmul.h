/**
 * @file
 * Dense matrix-matrix multiplication.
 *
 * MatMul is one of the two "heavy" primitives identified by the paper
 * (the other being convolution); fully-connected and recurrent Fathom
 * workloads (speech, seq2seq, memnet, autoenc) spend most of their time
 * here.
 */
#ifndef FATHOM_KERNELS_MATMUL_H
#define FATHOM_KERNELS_MATMUL_H

#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/**
 * Computes C = op(A) * op(B) where op is optional transposition.
 *
 * @param a          float32 matrix [m, k] (or [k, m] if transpose_a).
 * @param b          float32 matrix [k, n] (or [n, k] if transpose_b).
 * @param transpose_a whether to use A^T.
 * @param transpose_b whether to use B^T.
 * @param pool       thread pool for tile-parallel execution.
 * @return           float32 matrix [m, n].
 *
 * All four transpose variants route through the blocked, packed GEMM
 * engine (kernels/gemm.h): transposition becomes a stride swap in the
 * packing step, parallelism is over 2-D output tiles, and results are
 * bit-identical at every thread count.
 */
Tensor MatMul(const Tensor& a, const Tensor& b, bool transpose_a,
              bool transpose_b, parallel::ThreadPool& pool);

/** @return the logical row count of op(A) (legacy cost-model proxy;
 * the 2-D tile trip count is kernels::GemmTileCount). */
std::int64_t MatMulParallelWork(const Tensor& a, bool transpose_a);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_MATMUL_H
