#include "kernels/elementwise.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace fathom::kernels {

Shape
BroadcastShape(const Shape& a, const Shape& b)
{
    const int rank = std::max(a.rank(), b.rank());
    std::vector<std::int64_t> dims(static_cast<std::size_t>(rank));
    for (int i = 0; i < rank; ++i) {
        // Align trailing dimensions.
        const std::int64_t da =
            (i >= rank - a.rank()) ? a.dim(i - (rank - a.rank())) : 1;
        const std::int64_t db =
            (i >= rank - b.rank()) ? b.dim(i - (rank - b.rank())) : 1;
        if (da != db && da != 1 && db != 1) {
            throw std::invalid_argument("Cannot broadcast " + a.ToString() +
                                        " with " + b.ToString());
        }
        // A 1 stretches to the other extent — including extent 0, so
        // broadcasting against an empty tensor yields an empty result
        // (max() would wrongly produce 1 there).
        dims[static_cast<std::size_t>(i)] = da == 1 ? db : da;
    }
    return Shape(dims);
}

Tensor
UnaryMap(const Tensor& input, const std::function<float(float)>& fn,
         parallel::ThreadPool& pool, bool may_alias)
{
    // Aliasing is safe because the loop below reads in[i] before
    // writing o[i]; with the same partition and the same fn the bits
    // are identical either way.
    Tensor out = (may_alias && input.dtype() == DType::kFloat32)
                     ? input
                     : Tensor(DType::kFloat32, input.shape());
    const float* in = input.data<float>();
    float* o = out.data<float>();
    pool.ParallelFor(input.num_elements(), /*grain=*/4096,
                     [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
            o[i] = fn(in[i]);
        }
    });
    return out;
}

namespace {

/**
 * Broadcast element strides of @p s against output shape @p out:
 * stride 0 wherever the input dimension is 1 (broadcast), row-major
 * stride otherwise. Strides are aligned to the output's rank.
 */
std::vector<std::int64_t>
BroadcastStrides(const Shape& s, const Shape& out)
{
    const int out_rank = out.rank();
    std::vector<std::int64_t> strides(static_cast<std::size_t>(out_rank), 0);
    const int offset = out_rank - s.rank();
    std::int64_t stride = 1;
    for (int i = s.rank() - 1; i >= 0; --i) {
        if (s.dim(i) != 1) {
            strides[static_cast<std::size_t>(i + offset)] = stride;
        }
        stride *= s.dim(i);
    }
    return strides;
}

}  // namespace

Tensor
BinaryMap(const Tensor& a, const Tensor& b,
          const std::function<float(float, float)>& fn,
          parallel::ThreadPool& pool, bool may_alias)
{
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    const bool alias_ok = may_alias && a.dtype() == DType::kFloat32 &&
                          b.dtype() == DType::kFloat32;

    if (a.shape() == b.shape()) {
        Tensor out = alias_ok ? a : Tensor(DType::kFloat32, a.shape());
        float* o = out.data<float>();
        pool.ParallelFor(a.num_elements(), /*grain=*/4096,
                         [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
                o[i] = fn(pa[i], pb[i]);
            }
        });
        return out;
    }

    const Shape out_shape = BroadcastShape(a.shape(), b.shape());
    // Broadcast path: aliasing needs out slot i to correspond to a's
    // element i (true exactly when a already has the output shape, so
    // off_a == flat and each slot is read before written).
    Tensor out = (alias_ok && out_shape == a.shape())
                     ? a
                     : Tensor(DType::kFloat32, out_shape);
    float* o = out.data<float>();
    const int rank = out_shape.rank();
    const auto sa = BroadcastStrides(a.shape(), out_shape);
    const auto sb = BroadcastStrides(b.shape(), out_shape);
    const std::int64_t n = out_shape.num_elements();

    std::vector<std::int64_t> out_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        out_strides[static_cast<std::size_t>(i)] =
            out_strides[static_cast<std::size_t>(i + 1)] * out_shape.dim(i + 1);
    }

    pool.ParallelFor(n, /*grain=*/2048, [&](std::int64_t i0, std::int64_t i1) {
        std::vector<std::int64_t> idx(static_cast<std::size_t>(rank));
        for (std::int64_t flat = i0; flat < i1; ++flat) {
            std::int64_t rem = flat;
            std::int64_t off_a = 0;
            std::int64_t off_b = 0;
            for (int d = 0; d < rank; ++d) {
                const std::int64_t od = rem / out_strides[static_cast<std::size_t>(d)];
                rem -= od * out_strides[static_cast<std::size_t>(d)];
                off_a += od * sa[static_cast<std::size_t>(d)];
                off_b += od * sb[static_cast<std::size_t>(d)];
            }
            o[flat] = fn(pa[off_a], pb[off_b]);
        }
    });
    return out;
}

Tensor
ReduceToShape(const Tensor& from, const Shape& to, parallel::ThreadPool& pool)
{
    if (from.shape() == to) {
        return from;
    }
    const Shape& fs = from.shape();
    const int rank = fs.rank();
    const int offset = rank - to.rank();
    if (offset < 0) {
        throw std::invalid_argument("ReduceToShape: target rank larger than source");
    }

    Tensor out = Tensor::Zeros(to);
    const float* in = from.data<float>();
    float* o = out.data<float>();

    // Strides of the target, aligned against the source rank; broadcast
    // (or missing-leading) dimensions get stride 0 so all their source
    // entries accumulate into one cell.
    std::vector<std::int64_t> to_strides(static_cast<std::size_t>(rank), 0);
    {
        std::int64_t stride = 1;
        for (int i = to.rank() - 1; i >= 0; --i) {
            if (to.dim(i) != 1) {
                if (to.dim(i) != fs.dim(i + offset)) {
                    throw std::invalid_argument(
                        "ReduceToShape: " + fs.ToString() +
                        " does not broadcast-reduce to " + to.ToString());
                }
                to_strides[static_cast<std::size_t>(i + offset)] = stride;
            }
            stride *= to.dim(i);
        }
    }
    std::vector<std::int64_t> from_strides(static_cast<std::size_t>(rank), 1);
    for (int i = rank - 2; i >= 0; --i) {
        from_strides[static_cast<std::size_t>(i)] =
            from_strides[static_cast<std::size_t>(i + 1)] * fs.dim(i + 1);
    }

    // Serial accumulation (scatter pattern); reductions of this kind
    // are small compared to the ops producing their inputs.
    const std::int64_t n = fs.num_elements();
    for (std::int64_t flat = 0; flat < n; ++flat) {
        std::int64_t rem = flat;
        std::int64_t off = 0;
        for (int d = 0; d < rank; ++d) {
            const std::int64_t fd = rem / from_strides[static_cast<std::size_t>(d)];
            rem -= fd * from_strides[static_cast<std::size_t>(d)];
            off += fd * to_strides[static_cast<std::size_t>(d)];
        }
        o[off] += in[flat];
    }
    (void)pool;
    return out;
}

}  // namespace fathom::kernels
