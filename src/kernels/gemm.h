/**
 * @file
 * Blocked, packed single-precision GEMM engine.
 *
 * This is the compute core behind MatMul and the lowered Conv2D
 * kernels: a register-tiled kMr x kNr micro-kernel driven by
 * cache-level blocking over packed A/B panels (the GotoBLAS / BLIS
 * structure). Both packing and the micro-kernel sweep are
 * parallelized, the latter over a 2-D grid of M-tile x N-tile blocks
 * via ThreadPool::ParallelFor2D.
 *
 * Determinism: every C element is accumulated in a fixed order — the
 * serial KC-block loop outermost, ascending k inside the micro-kernel
 * — and each output tile is written by exactly one task per KC block.
 * The tile grid depends only on the problem geometry, never on the
 * pool width, so results are bit-identical across thread counts and
 * across runs (the PR 1 guarantee extends through the hot path).
 *
 * Pack buffers are drawn from the process-wide size-bucketed
 * BufferPool, so steady-state training steps reuse the same panels
 * with zero fresh allocation.
 */
#ifndef FATHOM_KERNELS_GEMM_H
#define FATHOM_KERNELS_GEMM_H

#include <cstdint>
#include <functional>

#include "parallel/thread_pool.h"

namespace fathom::kernels {

/** Micro-kernel register tile: kMr rows x kNr columns of C. */
inline constexpr std::int64_t kGemmMr = 6;
inline constexpr std::int64_t kGemmNr = 16;
/** K-dimension cache block: one packed A strip (kMr x kKc floats) and
 * one packed B strip (kKc x kNr floats) stay L1/L2-resident. */
inline constexpr std::int64_t kGemmKc = 256;
/** Parallel task tile: each ParallelFor2D block owns kMc x kNc of C. */
inline constexpr std::int64_t kGemmMc = 96;
inline constexpr std::int64_t kGemmNc = 192;
/** Rows of A packed at once; bounds the packed-A footprint for tall
 * matrices (im2col patch matrices) to kMBlock x kKc floats. */
inline constexpr std::int64_t kGemmMBlock = 3072;

/**
 * Packs one logical panel into the engine's strip layout.
 *
 * An A packer receives (dst, row0, k0, k1) and must write the kGemmMr
 * rows starting at row0, k-range [k0, k1), as dst[(k - k0) * kGemmMr +
 * (row - row0)], substituting 0.0f for rows at or beyond m. A B packer
 * receives (dst, col0, k0, k1) and writes dst[(k - k0) * kGemmNr +
 * (col - col0)], substituting 0.0f for columns at or beyond n. The
 * k range is never padded: only edge rows/columns are zero-filled,
 * and those lanes are computed but never stored, so synthetic zeros
 * can never mask an Inf/NaN contribution to a real output element.
 */
using PanelPacker =
    std::function<void(float* dst, std::int64_t idx0, std::int64_t k0,
                       std::int64_t k1)>;

/**
 * C[m, n] = op(A) * op(B) with arbitrary element strides on A and B.
 *
 * @param m, n, k  logical GEMM dimensions.
 * @param a        A base pointer; element (i, p) is a[i*a_rs + p*a_cs].
 * @param b        B base pointer; element (p, j) is b[p*b_rs + j*b_cs].
 * @param c        row-major output, leading dimension n.
 * @param accumulate if true, C += product instead of C = product.
 * @param pool     thread pool; parallelism is over the 2-D tile grid.
 *
 * Transposition is expressed through the strides (swap row/column
 * stride), so all four MatMul variants and both MatMulGrad products
 * share this one entry point. If k == 0 the product is all zeros:
 * C is zero-filled (or left untouched when accumulating).
 */
void Gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          std::int64_t a_rs, std::int64_t a_cs, const float* b,
          std::int64_t b_rs, std::int64_t b_cs, float* c, bool accumulate,
          parallel::ThreadPool& pool);

/**
 * The generic engine: C[m, n] (row-major, ld n) from custom packers.
 *
 * Conv2D lowers onto this by packing A panels directly from the padded
 * image (a virtual im2col), so the patch matrix is never materialized.
 * Packers are invoked once per panel strip (not per element) and must
 * be safe to call concurrently for disjoint strips.
 */
void GemmPanels(std::int64_t m, std::int64_t n, std::int64_t k,
                const PanelPacker& pack_a, const PanelPacker& pack_b,
                float* c, bool accumulate, parallel::ThreadPool& pool);

/** @return a PanelPacker reading the strided matrix op(A) [m, k]. */
PanelPacker StridedPackA(const float* a, std::int64_t a_rs,
                         std::int64_t a_cs, std::int64_t m);

/** @return a PanelPacker reading the strided matrix op(B) [k, n]. */
PanelPacker StridedPackB(const float* b, std::int64_t b_rs,
                         std::int64_t b_cs, std::int64_t n);

/**
 * @return the number of blocks in the engine's parallel tile grid for
 * an m x n output — the kernel's parallelizable trip count, consumed
 * by the op cost models feeding the device-model scaling analysis.
 */
std::int64_t GemmTileCount(std::int64_t m, std::int64_t n);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_GEMM_H
