#include "kernels/normalization.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace fathom::kernels {

namespace {

std::pair<std::int64_t, std::int64_t>
RowsChannels(const Shape& s)
{
    if (s.rank() < 1) {
        throw std::invalid_argument("normalization kernels need rank >= 1");
    }
    const std::int64_t c = s.dim(-1);
    return {s.num_elements() / std::max<std::int64_t>(c, 1), c};
}

}  // namespace

Tensor
Lrn(const Tensor& input, const LrnParams& params, parallel::ThreadPool& pool)
{
    const auto [rows, channels] = RowsChannels(input.shape());
    Tensor out(DType::kFloat32, input.shape());
    const float* in = input.data<float>();
    float* o = out.data<float>();
    const std::int64_t r = params.depth_radius;

    pool.ParallelFor(rows, /*grain=*/8, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
            const float* x = in + row * channels;
            float* y = o + row * channels;
            for (std::int64_t i = 0; i < channels; ++i) {
                const std::int64_t j0 = std::max<std::int64_t>(i - r, 0);
                const std::int64_t j1 =
                    std::min<std::int64_t>(i + r, channels - 1);
                float sq = 0.0f;
                for (std::int64_t j = j0; j <= j1; ++j) {
                    sq += x[j] * x[j];
                }
                y[i] = x[i] * std::pow(params.bias + params.alpha * sq,
                                       -params.beta);
            }
        }
    });
    return out;
}

Tensor
LrnGrad(const Tensor& input, const Tensor& grad_out, const LrnParams& params,
        parallel::ThreadPool& pool)
{
    const auto [rows, channels] = RowsChannels(input.shape());
    Tensor grad_in = Tensor::Zeros(input.shape());
    const float* in = input.data<float>();
    const float* go = grad_out.data<float>();
    float* gi = grad_in.data<float>();
    const std::int64_t r = params.depth_radius;

    pool.ParallelFor(rows, /*grain=*/8, [&](std::int64_t r0, std::int64_t r1) {
        std::vector<float> denom(static_cast<std::size_t>(channels));
        for (std::int64_t row = r0; row < r1; ++row) {
            const float* x = in + row * channels;
            const float* dy = go + row * channels;
            float* dx = gi + row * channels;
            for (std::int64_t i = 0; i < channels; ++i) {
                const std::int64_t j0 = std::max<std::int64_t>(i - r, 0);
                const std::int64_t j1 =
                    std::min<std::int64_t>(i + r, channels - 1);
                float sq = 0.0f;
                for (std::int64_t j = j0; j <= j1; ++j) {
                    sq += x[j] * x[j];
                }
                denom[static_cast<std::size_t>(i)] =
                    params.bias + params.alpha * sq;
            }
            // dL/dx_j = dy_j * d_j^-beta
            //         - 2*alpha*beta*x_j * sum_{i: |i-j|<=r}
            //               dy_i * x_i * d_i^(-beta-1)
            for (std::int64_t j = 0; j < channels; ++j) {
                const float dj = denom[static_cast<std::size_t>(j)];
                float acc = dy[j] * std::pow(dj, -params.beta);
                const std::int64_t i0 = std::max<std::int64_t>(j - r, 0);
                const std::int64_t i1 =
                    std::min<std::int64_t>(j + r, channels - 1);
                float cross = 0.0f;
                for (std::int64_t i = i0; i <= i1; ++i) {
                    const float di = denom[static_cast<std::size_t>(i)];
                    cross += dy[i] * x[i] * std::pow(di, -params.beta - 1.0f);
                }
                acc -= 2.0f * params.alpha * params.beta * x[j] * cross;
                dx[j] = acc;
            }
        }
    });
    return grad_in;
}

BatchNormResult
BatchNorm(const Tensor& input, const Tensor& gamma, const Tensor& beta,
          float epsilon, parallel::ThreadPool& pool)
{
    const auto [rows, channels] = RowsChannels(input.shape());
    if (gamma.num_elements() != channels || beta.num_elements() != channels) {
        throw std::invalid_argument("BatchNorm: gamma/beta must be [channels]");
    }
    BatchNormResult result;
    result.mean = Tensor::Zeros(Shape{channels});
    result.inv_std = Tensor::Zeros(Shape{channels});
    result.output = Tensor(DType::kFloat32, input.shape());

    const float* in = input.data<float>();
    const float* g = gamma.data<float>();
    const float* b = beta.data<float>();
    float* mu = result.mean.data<float>();
    float* istd = result.inv_std.data<float>();
    float* o = result.output.data<float>();

    // Mean/variance accumulate in double: with float accumulators the
    // batch statistics drift once rows x channels gets large (the
    // residual workload's post-conv activations), skewing every
    // normalized output downstream.
    const double inv_rows = 1.0 / static_cast<double>(rows);
    std::vector<double> mean_acc(static_cast<std::size_t>(channels), 0.0);
    std::vector<double> var_acc(static_cast<std::size_t>(channels), 0.0);
    for (std::int64_t row = 0; row < rows; ++row) {
        const float* x = in + row * channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            mean_acc[static_cast<std::size_t>(c)] +=
                static_cast<double>(x[c]);
        }
    }
    for (std::int64_t c = 0; c < channels; ++c) {
        mu[c] = static_cast<float>(mean_acc[static_cast<std::size_t>(c)] *
                                   inv_rows);
    }
    for (std::int64_t row = 0; row < rows; ++row) {
        const float* x = in + row * channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            const double d = static_cast<double>(x[c]) -
                             static_cast<double>(mu[c]);
            var_acc[static_cast<std::size_t>(c)] += d * d;
        }
    }
    for (std::int64_t c = 0; c < channels; ++c) {
        istd[c] = static_cast<float>(
            1.0 / std::sqrt(var_acc[static_cast<std::size_t>(c)] * inv_rows +
                            static_cast<double>(epsilon)));
    }

    pool.ParallelFor(rows, /*grain=*/16,
                     [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
            const float* x = in + row * channels;
            float* y = o + row * channels;
            for (std::int64_t c = 0; c < channels; ++c) {
                y[c] = g[c] * (x[c] - mu[c]) * istd[c] + b[c];
            }
        }
    });
    return result;
}

BatchNormGrads
BatchNormGrad(const Tensor& input, const Tensor& gamma, const Tensor& mean,
              const Tensor& inv_std, const Tensor& grad_out,
              parallel::ThreadPool& pool)
{
    const auto [rows, channels] = RowsChannels(input.shape());
    BatchNormGrads grads;
    grads.grad_input = Tensor::Zeros(input.shape());
    grads.grad_gamma = Tensor::Zeros(Shape{channels});
    grads.grad_beta = Tensor::Zeros(Shape{channels});

    const float* in = input.data<float>();
    const float* g = gamma.data<float>();
    const float* mu = mean.data<float>();
    const float* istd = inv_std.data<float>();
    const float* dy = grad_out.data<float>();
    float* dx = grads.grad_input.data<float>();
    float* dg = grads.grad_gamma.data<float>();
    float* db = grads.grad_beta.data<float>();

    // Accumulate sum(dy) and sum(dy * x_hat) per channel, in double
    // (same large-batch precision concern as the forward statistics).
    std::vector<double> sum_dy_acc(static_cast<std::size_t>(channels), 0.0);
    std::vector<double> sum_dy_xhat_acc(static_cast<std::size_t>(channels),
                                        0.0);
    for (std::int64_t row = 0; row < rows; ++row) {
        const float* x = in + row * channels;
        const float* d = dy + row * channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            const float xhat = (x[c] - mu[c]) * istd[c];
            sum_dy_acc[static_cast<std::size_t>(c)] +=
                static_cast<double>(d[c]);
            sum_dy_xhat_acc[static_cast<std::size_t>(c)] +=
                static_cast<double>(d[c]) * static_cast<double>(xhat);
        }
    }
    std::vector<float> sum_dy(static_cast<std::size_t>(channels));
    std::vector<float> sum_dy_xhat(static_cast<std::size_t>(channels));
    for (std::int64_t c = 0; c < channels; ++c) {
        sum_dy[static_cast<std::size_t>(c)] =
            static_cast<float>(sum_dy_acc[static_cast<std::size_t>(c)]);
        sum_dy_xhat[static_cast<std::size_t>(c)] =
            static_cast<float>(sum_dy_xhat_acc[static_cast<std::size_t>(c)]);
        dg[c] = sum_dy_xhat[static_cast<std::size_t>(c)];
        db[c] = sum_dy[static_cast<std::size_t>(c)];
    }

    const float inv_rows = 1.0f / static_cast<float>(rows);
    pool.ParallelFor(rows, /*grain=*/16,
                     [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
            const float* x = in + row * channels;
            const float* d = dy + row * channels;
            float* out = dx + row * channels;
            for (std::int64_t c = 0; c < channels; ++c) {
                const float xhat = (x[c] - mu[c]) * istd[c];
                out[c] = g[c] * istd[c] *
                         (d[c] -
                          inv_rows * sum_dy[static_cast<std::size_t>(c)] -
                          xhat * inv_rows *
                              sum_dy_xhat[static_cast<std::size_t>(c)]);
            }
        }
    });
    return grads;
}

}  // namespace fathom::kernels
