/**
 * @file
 * Axis reductions, softmax, and related expansion kernels.
 */
#ifndef FATHOM_KERNELS_REDUCTION_H
#define FATHOM_KERNELS_REDUCTION_H

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"
#include "tensor/tensor.h"

namespace fathom::kernels {

/** Reduction operator selector. */
enum class ReduceOp { kSum, kMean, kMax };

/**
 * Reduces a float32 tensor over @p axes.
 *
 * @param axes      axes to reduce (negative axes allowed); empty means
 *                  "all axes" (full reduction to a scalar).
 * @param keep_dims if true, reduced axes remain with extent 1.
 */
Tensor Reduce(const Tensor& input, ReduceOp op,
              const std::vector<int>& axes, bool keep_dims,
              parallel::ThreadPool& pool);

/** Row-wise softmax over the last dimension. */
Tensor Softmax(const Tensor& logits, parallel::ThreadPool& pool);

/** Row-wise log-softmax over the last dimension (numerically stable). */
Tensor LogSoftmax(const Tensor& logits, parallel::ThreadPool& pool);

/**
 * Row-wise argmax over the last dimension.
 * @return an int32 tensor with the last dimension removed.
 */
Tensor ArgMaxLastDim(const Tensor& input, parallel::ThreadPool& pool);

/**
 * Tiles @p input by repeating it @p multiples[i] times along axis i.
 * multiples.size() must equal the input rank.
 */
Tensor Tile(const Tensor& input, const std::vector<std::int64_t>& multiples,
            parallel::ThreadPool& pool);

/** Adjoint of Tile: sums the tiled gradient back to the input shape. */
Tensor TileGrad(const Tensor& grad_out, const Shape& input_shape,
                const std::vector<std::int64_t>& multiples,
                parallel::ThreadPool& pool);

}  // namespace fathom::kernels

#endif  // FATHOM_KERNELS_REDUCTION_H
