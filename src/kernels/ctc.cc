#include "kernels/ctc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "kernels/reduction.h"
#include "parallel/thread_pool.h"

namespace fathom::kernels {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/** log(exp(a) + exp(b)) without overflow. */
float
LogAdd(float a, float b)
{
    if (a == kNegInf) {
        return b;
    }
    if (b == kNegInf) {
        return a;
    }
    const float m = std::max(a, b);
    return m + std::log(std::exp(a - m) + std::exp(b - m));
}

}  // namespace

CtcResult
CtcLoss(const Tensor& logits, const std::vector<std::int32_t>& labels,
        std::int32_t blank, parallel::ThreadPool& pool)
{
    if (logits.shape().rank() != 2) {
        throw std::invalid_argument("CtcLoss: logits must be [time, classes]");
    }
    const std::int64_t time = logits.shape().dim(0);
    const std::int64_t classes = logits.shape().dim(1);
    if (blank < 0 || blank >= classes) {
        throw std::invalid_argument("CtcLoss: blank index out of range");
    }
    for (std::int32_t l : labels) {
        if (l < 0 || l >= classes || l == blank) {
            throw std::invalid_argument("CtcLoss: invalid label value");
        }
    }

    // Extended sequence l' = blank, l1, blank, l2, ..., blank.
    const std::int64_t num_labels = static_cast<std::int64_t>(labels.size());
    const std::int64_t ext = 2 * num_labels + 1;
    std::vector<std::int32_t> lp(static_cast<std::size_t>(ext), blank);
    for (std::int64_t i = 0; i < num_labels; ++i) {
        lp[static_cast<std::size_t>(2 * i + 1)] =
            labels[static_cast<std::size_t>(i)];
    }

    // Feasibility: each label needs a frame, plus a separator frame
    // between equal consecutive labels.
    std::int64_t min_frames = num_labels;
    for (std::int64_t i = 1; i < num_labels; ++i) {
        if (labels[static_cast<std::size_t>(i)] ==
            labels[static_cast<std::size_t>(i - 1)]) {
            ++min_frames;
        }
    }
    if (time < min_frames) {
        throw std::invalid_argument(
            "CtcLoss: label sequence cannot fit in " + std::to_string(time) +
            " frames");
    }

    const Tensor log_probs = LogSoftmax(logits, pool);
    const float* lprob = log_probs.data<float>();
    auto lp_at = [&](std::int64_t t, std::int64_t s) {
        return lprob[t * classes + lp[static_cast<std::size_t>(s)]];
    };
    auto can_skip = [&](std::int64_t s) {
        // The alpha(t-1, s-2) path is allowed when l'_s is a real label
        // different from l'_{s-2}.
        return s >= 2 && lp[static_cast<std::size_t>(s)] != blank &&
               lp[static_cast<std::size_t>(s)] !=
                   lp[static_cast<std::size_t>(s - 2)];
    };

    // Forward (alpha) and backward (beta) lattices, log domain.
    std::vector<float> alpha(static_cast<std::size_t>(time * ext), kNegInf);
    std::vector<float> beta(static_cast<std::size_t>(time * ext), kNegInf);
    auto a = [&](std::int64_t t, std::int64_t s) -> float& {
        return alpha[static_cast<std::size_t>(t * ext + s)];
    };
    auto b = [&](std::int64_t t, std::int64_t s) -> float& {
        return beta[static_cast<std::size_t>(t * ext + s)];
    };

    a(0, 0) = lp_at(0, 0);
    if (ext > 1) {
        a(0, 1) = lp_at(0, 1);
    }
    for (std::int64_t t = 1; t < time; ++t) {
        for (std::int64_t s = 0; s < ext; ++s) {
            float v = a(t - 1, s);
            if (s >= 1) {
                v = LogAdd(v, a(t - 1, s - 1));
            }
            if (can_skip(s)) {
                v = LogAdd(v, a(t - 1, s - 2));
            }
            if (v != kNegInf) {
                a(t, s) = v + lp_at(t, s);
            }
        }
    }

    b(time - 1, ext - 1) = 0.0f;
    if (ext > 1) {
        b(time - 1, ext - 2) = 0.0f;
    }
    for (std::int64_t t = time - 2; t >= 0; --t) {
        for (std::int64_t s = 0; s < ext; ++s) {
            float v = (b(t + 1, s) == kNegInf)
                          ? kNegInf
                          : b(t + 1, s) + lp_at(t + 1, s);
            if (s + 1 < ext && b(t + 1, s + 1) != kNegInf) {
                v = LogAdd(v, b(t + 1, s + 1) + lp_at(t + 1, s + 1));
            }
            if (s + 2 < ext && can_skip(s + 2) &&
                b(t + 1, s + 2) != kNegInf) {
                v = LogAdd(v, b(t + 1, s + 2) + lp_at(t + 1, s + 2));
            }
            b(t, s) = v;
        }
    }

    float log_p = a(time - 1, ext - 1);
    if (ext > 1) {
        log_p = LogAdd(log_p, a(time - 1, ext - 2));
    }

    CtcResult result;
    result.loss = -log_p;
    result.grad_logits = Tensor::Zeros(logits.shape());
    float* grad = result.grad_logits.data<float>();

    // gamma(t, s) = exp(alpha + beta - logP); accumulate posteriors per
    // class, then dL/dy = softmax(y) - class posterior.
    for (std::int64_t t = 0; t < time; ++t) {
        std::vector<float> class_post(static_cast<std::size_t>(classes), 0.0f);
        for (std::int64_t s = 0; s < ext; ++s) {
            const float av = a(t, s);
            const float bv = b(t, s);
            if (av == kNegInf || bv == kNegInf) {
                continue;
            }
            class_post[static_cast<std::size_t>(
                lp[static_cast<std::size_t>(s)])] +=
                std::exp(av + bv - log_p);
        }
        for (std::int64_t k = 0; k < classes; ++k) {
            grad[t * classes + k] =
                std::exp(lprob[t * classes + k]) -
                class_post[static_cast<std::size_t>(k)];
        }
    }
    return result;
}

float
CtcLossBruteForce(const Tensor& logits,
                  const std::vector<std::int32_t>& labels,
                  std::int32_t blank, parallel::ThreadPool& pool)
{
    const std::int64_t time = logits.shape().dim(0);
    const std::int64_t classes = logits.shape().dim(1);
    const Tensor log_probs = LogSoftmax(logits, pool);
    const float* lprob = log_probs.data<float>();

    // Enumerate every alignment pi in {0..classes-1}^time, collapse it,
    // and sum P(pi) over alignments that collapse to `labels`.
    std::vector<std::int32_t> pi(static_cast<std::size_t>(time), 0);
    float total = kNegInf;
    for (;;) {
        // Collapse: remove repeats then blanks.
        std::vector<std::int32_t> collapsed;
        for (std::int64_t t = 0; t < time; ++t) {
            const std::int32_t c = pi[static_cast<std::size_t>(t)];
            if (t > 0 && c == pi[static_cast<std::size_t>(t - 1)]) {
                continue;
            }
            if (c != blank) {
                collapsed.push_back(c);
            }
        }
        if (collapsed == labels) {
            float lp_path = 0.0f;
            for (std::int64_t t = 0; t < time; ++t) {
                lp_path += lprob[t * classes + pi[static_cast<std::size_t>(t)]];
            }
            total = LogAdd(total, lp_path);
        }
        // Next alignment (odometer).
        std::int64_t pos = time - 1;
        while (pos >= 0) {
            if (++pi[static_cast<std::size_t>(pos)] < classes) {
                break;
            }
            pi[static_cast<std::size_t>(pos)] = 0;
            --pos;
        }
        if (pos < 0) {
            break;
        }
    }
    return -total;
}

std::vector<std::int32_t>
CtcBeamSearchDecode(const Tensor& logits, std::int32_t blank, int beam_width,
                    parallel::ThreadPool& pool)
{
    const std::int64_t time = logits.shape().dim(0);
    const std::int64_t classes = logits.shape().dim(1);
    if (beam_width < 1) {
        throw std::invalid_argument("CtcBeamSearchDecode: beam_width >= 1");
    }
    const Tensor log_probs = LogSoftmax(logits, pool);
    const float* lp = log_probs.data<float>();

    // Each beam entry tracks a prefix with two scores: probability of
    // all alignments ending in blank (p_b) and in the prefix's last
    // label (p_nb), both in the log domain.
    struct Scores {
        float p_b = kNegInf;
        float p_nb = kNegInf;
        float
        total() const
        {
            return LogAdd(p_b, p_nb);
        }
    };
    // Prefixes as int32 vectors; use a map keyed by the prefix.
    using Prefix = std::vector<std::int32_t>;
    std::map<Prefix, Scores> beam;
    beam[{}] = Scores{0.0f, kNegInf};  // empty prefix, via blanks.

    for (std::int64_t t = 0; t < time; ++t) {
        std::map<Prefix, Scores> next;
        auto bump = [&next](const Prefix& prefix, bool into_blank,
                            float value) {
            Scores& s = next[prefix];
            float& slot = into_blank ? s.p_b : s.p_nb;
            slot = LogAdd(slot, value);
        };
        for (const auto& [prefix, scores] : beam) {
            const float last_lp =
                prefix.empty()
                    ? kNegInf
                    : lp[t * classes + prefix.back()];
            // Extend with blank: prefix unchanged.
            bump(prefix, /*into_blank=*/true,
                 scores.total() + lp[t * classes + blank]);
            // Repeat the last label: only continues the non-blank path
            // (a repeat after blank would be a new emission).
            if (!prefix.empty()) {
                bump(prefix, /*into_blank=*/false, scores.p_nb + last_lp);
            }
            for (std::int32_t c = 0; c < classes; ++c) {
                if (c == blank) {
                    continue;
                }
                const float c_lp = lp[t * classes + c];
                Prefix extended = prefix;
                extended.push_back(c);
                if (!prefix.empty() && prefix.back() == c) {
                    // New emission of the same label requires a blank
                    // separator, so it can only follow the blank path.
                    bump(extended, /*into_blank=*/false,
                         scores.p_b + c_lp);
                } else {
                    bump(extended, /*into_blank=*/false,
                         scores.total() + c_lp);
                }
            }
        }
        // Keep the beam_width best prefixes by total probability.
        std::vector<std::pair<Prefix, Scores>> sorted(next.begin(),
                                                      next.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto& a, const auto& b) {
                      return a.second.total() > b.second.total();
                  });
        beam.clear();
        for (std::size_t i = 0;
             i < sorted.size() &&
             i < static_cast<std::size_t>(beam_width);
             ++i) {
            beam.insert(sorted[i]);
        }
    }

    const Prefix* best = nullptr;
    float best_score = kNegInf;
    for (const auto& [prefix, scores] : beam) {
        if (scores.total() > best_score) {
            best_score = scores.total();
            best = &prefix;
        }
    }
    return best != nullptr ? *best : Prefix{};
}

std::vector<std::int32_t>
CtcGreedyDecode(const Tensor& logits, std::int32_t blank)
{
    const std::int64_t time = logits.shape().dim(0);
    const std::int64_t classes = logits.shape().dim(1);
    const float* p = logits.data<float>();
    std::vector<std::int32_t> out;
    std::int32_t prev = -1;
    for (std::int64_t t = 0; t < time; ++t) {
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < classes; ++c) {
            if (p[t * classes + c] > p[t * classes + best]) {
                best = c;
            }
        }
        const std::int32_t sym = static_cast<std::int32_t>(best);
        if (sym != prev && sym != blank) {
            out.push_back(sym);
        }
        prev = sym;
    }
    return out;
}

}  // namespace fathom::kernels
