#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>

namespace fathom::parallel {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(num_threads, 1))
{
    // The calling thread participates in ParallelFor, so spawn one
    // fewer worker than the configured width.
    for (int i = 0; i < num_threads_ - 1; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutting_down_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

void
ThreadPool::Schedule(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::WorkerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
            if (shutting_down_ && tasks_.empty()) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
CountdownLatch::CountDown()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ <= 0) {
        cv_.notify_all();
    }
}

void
CountdownLatch::Wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ <= 0; });
}

void
ThreadPool::RunTasks(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty()) {
        return;
    }
    if (num_threads_ == 1 || tasks.size() == 1) {
        for (auto& task : tasks) {
            task();
        }
        return;
    }

    struct SharedState {
        explicit SharedState(std::int64_t n) : latch(n) {}
        CountdownLatch latch;
        std::mutex error_mu;
        std::size_t error_task = SIZE_MAX;
        std::exception_ptr error;
    };
    auto state = std::make_shared<SharedState>(
        static_cast<std::int64_t>(tasks.size()) - 1);

    auto run_guarded = [state](std::function<void()>& task,
                               std::size_t index) {
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(state->error_mu);
            // Lowest task index wins so reruns fail deterministically.
            if (index < state->error_task) {
                state->error_task = index;
                state->error = std::current_exception();
            }
        }
    };

    for (std::size_t i = 1; i < tasks.size(); ++i) {
        auto task = std::make_shared<std::function<void()>>(
            std::move(tasks[i]));
        Schedule([run_guarded, task, i, state] {
            run_guarded(*task, i);
            state->latch.CountDown();
        });
    }
    run_guarded(tasks[0], 0);
    state->latch.Wait();
    if (state->error) {
        std::rethrow_exception(state->error);
    }
}

void
ThreadPool::ParallelFor(std::int64_t total, std::int64_t grain,
                        const std::function<void(std::int64_t,
                                                 std::int64_t)>& fn)
{
    if (total <= 0) {
        return;
    }
    grain = std::max<std::int64_t>(grain, 1);
    // Below the grain threshold (or with a single-thread pool) run
    // inline: this is the "library avoids threading small trip counts"
    // behaviour the paper attributes to Eigen.
    if (num_threads_ == 1 || total <= grain) {
        fn(0, total);
        return;
    }

    const std::int64_t max_chunks = (total + grain - 1) / grain;
    const std::int64_t num_chunks =
        std::min<std::int64_t>(num_threads_, max_chunks);
    const std::int64_t chunk = (total + num_chunks - 1) / num_chunks;

    struct SharedState {
        std::atomic<std::int64_t> remaining;
        std::mutex done_mu;
        std::condition_variable done_cv;
        std::exception_ptr error;
        std::mutex error_mu;
    };
    auto state = std::make_shared<SharedState>();
    state->remaining.store(num_chunks - 1);

    auto run_chunk = [&fn, state](std::int64_t begin, std::int64_t end) {
        try {
            fn(begin, end);
        } catch (...) {
            std::lock_guard<std::mutex> lock(state->error_mu);
            if (!state->error) {
                state->error = std::current_exception();
            }
        }
    };

    // Dispatch all but the first chunk to workers; run the first inline.
    for (std::int64_t c = 1; c < num_chunks; ++c) {
        const std::int64_t begin = c * chunk;
        const std::int64_t end = std::min(begin + chunk, total);
        Schedule([run_chunk, begin, end, state] {
            run_chunk(begin, end);
            if (state->remaining.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(state->done_mu);
                state->done_cv.notify_one();
            }
        });
    }
    run_chunk(0, std::min(chunk, total));

    {
        std::unique_lock<std::mutex> lock(state->done_mu);
        state->done_cv.wait(lock,
                            [&state] { return state->remaining.load() == 0; });
    }
    if (state->error) {
        std::rethrow_exception(state->error);
    }
}

void
ThreadPool::ParallelFor2D(std::int64_t rows, std::int64_t cols,
                          std::int64_t row_block, std::int64_t col_block,
                          const std::function<void(std::int64_t, std::int64_t,
                                                   std::int64_t,
                                                   std::int64_t)>& fn)
{
    if (rows <= 0 || cols <= 0) {
        return;
    }
    row_block = std::max<std::int64_t>(row_block, 1);
    col_block = std::max<std::int64_t>(col_block, 1);
    const std::int64_t row_tiles = (rows + row_block - 1) / row_block;
    const std::int64_t col_tiles = (cols + col_block - 1) / col_block;
    // Scheduling rides on ParallelFor over the flattened block index;
    // the block geometry itself never depends on the pool width.
    ParallelFor(row_tiles * col_tiles, /*grain=*/1,
                [&](std::int64_t t0, std::int64_t t1) {
                    for (std::int64_t t = t0; t < t1; ++t) {
                        const std::int64_t rt = t / col_tiles;
                        const std::int64_t ct = t % col_tiles;
                        const std::int64_t r0 = rt * row_block;
                        const std::int64_t c0 = ct * col_block;
                        fn(r0, std::min(r0 + row_block, rows), c0,
                           std::min(c0 + col_block, cols));
                    }
                });
}

namespace {

std::unique_ptr<ThreadPool>&
GlobalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(1);
    return pool;
}

}  // namespace

ThreadPool&
ThreadPool::Global()
{
    return *GlobalPoolSlot();
}

void
ThreadPool::SetGlobalThreads(int num_threads)
{
    GlobalPoolSlot() = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace fathom::parallel
