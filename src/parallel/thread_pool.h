/**
 * @file
 * Intra-op worker pool, the analogue of the Eigen thread pool that
 * TensorFlow hands to its kernels.
 *
 * Fathom's parallelism study (paper Fig. 6) varies "the available thread
 * pool for the underlying Eigen library"; here the corresponding knob is
 * ThreadPool::num_threads, which kernels consult through ParallelFor.
 */
#ifndef FATHOM_PARALLEL_THREAD_POOL_H
#define FATHOM_PARALLEL_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fathom::parallel {

/**
 * A counter that threads can wait on until it reaches zero.
 *
 * The fan-out-with-completion-wait primitive behind ThreadPool::RunTasks
 * and the inter-op executor: the dispatcher initializes the latch to the
 * number of outstanding tasks, each task counts down once, and Wait()
 * returns when all of them have.
 */
class CountdownLatch {
  public:
    explicit CountdownLatch(std::int64_t count) : count_(count) {}

    CountdownLatch(const CountdownLatch&) = delete;
    CountdownLatch& operator=(const CountdownLatch&) = delete;

    /** Decrements the counter; wakes waiters when it reaches zero. */
    void CountDown();

    /** Blocks until the counter reaches zero. */
    void Wait();

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::int64_t count_;
};

/**
 * A fixed-size pool of worker threads executing submitted closures.
 *
 * The pool with num_threads == 1 runs everything inline on the calling
 * thread (no workers are spawned), which keeps single-threaded profiling
 * runs free of synchronization noise.
 */
class ThreadPool {
  public:
    /**
     * @param num_threads number of worker threads; 1 means "inline".
     */
    explicit ThreadPool(int num_threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** @return the configured parallel width (including the caller). */
    int num_threads() const { return num_threads_; }

    /**
     * Schedules @p task on a worker. Only valid for pools with more than
     * one thread; single-threaded pools run tasks inline via ParallelFor.
     */
    void Schedule(std::function<void()> task);

    /**
     * Runs every task in @p tasks and blocks until all of them finish.
     *
     * Tasks run concurrently across the pool: the calling thread
     * executes the first task itself while workers drain the rest, so a
     * pool of width N runs up to N tasks at once (tasks beyond the pool
     * width queue behind the others). A single-threaded pool runs the
     * tasks sequentially inline. The first exception (by task order) is
     * rethrown on the caller after all tasks complete.
     */
    void RunTasks(std::vector<std::function<void()>> tasks);

    /**
     * Runs fn(begin, end) over [0, total) split into contiguous chunks
     * across the pool, blocking until all chunks complete.
     *
     * @param total       iteration count.
     * @param grain       minimum iterations per chunk; ranges smaller
     *                    than grain run inline on the caller. This
     *                    mirrors Eigen's refusal to parallelize low
     *                    trip-count loops (the "skinny tensor" effect
     *                    the paper observes in memnet).
     * @param fn          callable taking (int64 begin, int64 end).
     *
     * Exceptions thrown by @p fn are captured and rethrown on the
     * calling thread after all chunks finish.
     */
    void ParallelFor(std::int64_t total, std::int64_t grain,
                     const std::function<void(std::int64_t,
                                              std::int64_t)>& fn);

    /**
     * Runs fn(row0, row1, col0, col1) over every block of a fixed 2-D
     * grid covering [0, rows) x [0, cols), blocking until all blocks
     * complete.
     *
     * The grid is determined purely by the geometry: blocks are
     * row_block x col_block (smaller at the right/bottom edges),
     * regardless of how many threads the pool has. Only the assignment
     * of blocks to threads varies with pool width, so a kernel that
     * keeps each block's work self-contained (the GEMM engine's
     * M-tile x N-tile partition) computes bit-identical results at
     * every thread count.
     *
     * Each block is invoked exactly once; blocks are distributed
     * across the pool in contiguous runs of the row-major block index.
     * Exceptions propagate like ParallelFor.
     */
    void ParallelFor2D(std::int64_t rows, std::int64_t cols,
                       std::int64_t row_block, std::int64_t col_block,
                       const std::function<void(std::int64_t, std::int64_t,
                                                std::int64_t, std::int64_t)>&
                           fn);

    /**
     * @return the global pool used by kernels when no pool is passed
     * explicitly. Defaults to a single thread; reconfigure with
     * SetGlobalThreads().
     */
    static ThreadPool& Global();

    /**
     * Replaces the global pool with one of @p num_threads workers.
     * Not thread-safe with respect to concurrently executing kernels;
     * callers (the scaling harness) must quiesce first.
     */
    static void SetGlobalThreads(int num_threads);

  private:
    void WorkerLoop();

    int num_threads_;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool shutting_down_ = false;
};

}  // namespace fathom::parallel

#endif  // FATHOM_PARALLEL_THREAD_POOL_H
