/**
 * @file
 * deepq — Mnih et al.'s 2013 deep Q-learning agent.
 *
 * Reproduces the full reinforcement-learning loop the paper credits
 * with "circumventing historical difficulties in extending neural
 * networks to decoupled feedback": pixel-frame inputs with 4-frame
 * stacking, an epsilon-greedy behaviour policy, an experience-replay
 * buffer sampled uniformly for minibatch updates, Q-learning targets
 * r + gamma * max_a' Q(s', a'), and RMSProp. The Atari emulator is the
 * MiniAtari substitute (see data/mini_atari.h); the Q network keeps the
 * 2013 topology (3 conv + 2 dense layers) at reduced width.
 */
#include <algorithm>
#include <deque>

#include "data/mini_atari.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

using graph::Output;

class DeepQWorkload : public Workload {
  public:
    std::string name() const override { return "deepq"; }
    std::string
    description() const override
    {
        return "Atari-playing neural network from DeepMind. Achieves "
               "superhuman performance on majority of Atari2600 games, "
               "without any preconceptions.";
    }
    std::string neuronal_style() const override { return "Convolutional, Full"; }
    int num_layers() const override { return 5; }
    std::string learning_task() const override { return "Reinforcement"; }
    std::string dataset() const override { return "mini-atari"; }

    void
    Setup(const WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 8;
        session_ = MakeSession(config);
        env_ = std::make_unique<data::MiniAtari>(kGrid, kScale,
                                                 config.seed ^ 0xDD);
        policy_rng_ = Rng(config.seed * 131 + 7);

        Rng init_rng(config.seed * 31 + 5);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "deepq");

        states_ = b.Placeholder("states");
        actions_ = b.Placeholder("actions");
        targets_ = b.Placeholder("targets");

        // Q network: 3 conv + 2 dense (2013 topology, reduced width).
        Output x = nn::Conv2DLayer(b, &trainables_, init_rng, "conv1",
                                   states_, 8, kFrames, 8, 4, "SAME");
        x = nn::Conv2DLayer(b, &trainables_, init_rng, "conv2", x, 4, 8, 16,
                            2, "SAME");
        x = nn::Conv2DLayer(b, &trainables_, init_rng, "conv3", x, 3, 16, 16,
                            1, "SAME");
        // 42 -> 11 -> 6 -> 6 spatial.
        const std::int64_t flat = 6 * 6 * 16;
        const Output features = b.Reshape(x, {-1, flat});
        Output h = nn::Dense(b, &trainables_, init_rng, "fc4", features,
                             flat, 128, nn::Activation::kRelu);
        q_values_ = nn::Dense(b, &trainables_, init_rng, "fc5", h, 128,
                              data::MiniAtari::kNumActions);
        greedy_action_ = b.ArgMax(q_values_);

        // Bellman regression loss on the taken actions.
        const Output mask =
            b.OneHot(actions_, data::MiniAtari::kNumActions);
        const Output q_taken =
            b.ReduceSum(b.Mul(q_values_, mask), {1}, /*keep_dims=*/false);
        loss_ = b.ReduceMean(b.Square(b.Sub(q_taken, targets_)), {}, false);

        train_op_ = nn::Minimize(
            b, loss_, trainables_,
            nn::OptimizerConfig::RmsProp(2.5e-4f, 0.95f, 0.01f));

        ResetFrameStack();
    }

    bool has_serving_endpoint() const override { return true; }

    serving::InferenceSignature
    ServingSignature() const override
    {
        // Serving a Q agent = greedy action selection: feed a frame
        // stack, fetch per-action values and the argmax policy.
        const std::int64_t size = env_->frame_size();
        serving::InferenceSignature sig;
        sig.inputs = {{PlaceholderName(*session_, states_), DType::kFloat32,
                       {size, size, kFrames}}};
        sig.fetches = {q_values_, greedy_action_};
        sig.output_names = {"q_values", "greedy_action"};
        return sig;
    }

    serving::RequestFeeds
    SampleServingRequest() override
    {
        const Tensor state = CurrentState(1);
        // Advance the environment randomly so successive samples are
        // distinct observations, not the same frame stack.
        StepEnv(static_cast<std::int32_t>(
            policy_rng_.UniformInt(data::MiniAtari::kNumActions)));
        return {{PlaceholderName(*session_, states_), state}};
    }

    StepResult
    RunInference(int steps) override
    {
        // Forward-only play: greedy policy, no learning. The
        // observation depends on the previous step's action (the RL
        // feedback loop), so the batch function is stateful and the
        // pipeline runs in forced-inline mode — prefetching a future
        // observation is impossible by construction.
        auto pipeline = MakePipeline(
            "infer", infer_step_,
            [this](std::int64_t) {
                return data::FeedBatch{{states_.node, CurrentState(1)}};
            },
            /*stateful=*/true);
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {greedy_action_});
            StepEnv(out[0].data<std::int32_t>()[0]);
            return 0.0f;
        });
        infer_step_ += steps;
        return result;
    }

    StepResult
    RunTraining(int steps) override
    {
        // Seed the replay buffer with random play before updating.
        while (static_cast<std::int64_t>(replay_.size()) < batch_ * 4) {
            ActAndRecord(/*epsilon=*/1.0f);
        }
        // The behaviour policy runs the *current* network and the
        // replay sample feeds the update that changes it: batch t+1
        // cannot be generated until step t finished. Stateful batch
        // function, forced-inline pipeline (see RunInference).
        auto pipeline = MakePipeline(
            "train", train_step_,
            [this](std::int64_t) {
                // Annealed epsilon-greedy exploration.
                const float epsilon = std::max(
                    0.1f, 1.0f - static_cast<float>(total_updates_) /
                                     500.0f);
                ActAndRecord(epsilon);
                return AssembleMinibatch();
            },
            /*stateful=*/true);
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {loss_}, {train_op_});
            ++total_updates_;
            return out[0].scalar_value();
        });
        train_step_ += steps;
        return result;
    }

    /** @return the environment's completed-episode count (for examples). */
    std::int64_t episodes() const { return env_->episodes(); }

    /**
     * Plays @p episodes greedily and returns the mean reward — used by
     * the example/tests to demonstrate actual learning.
     */
    float
    EvaluateGreedy(int episodes)
    {
        float total = 0.0f;
        int done = 0;
        ResetFrameStack();
        while (done < episodes) {
            const Tensor state = CurrentState(1);
            runtime::FeedMap feeds;
            feeds[states_.node] = state;
            const auto out = session_->Run(feeds, {greedy_action_});
            const auto result = StepEnv(out[0].data<std::int32_t>()[0]);
            if (result.episode_done) {
                total += result.reward;
                ++done;
            }
        }
        return total / static_cast<float>(episodes);
    }

  private:
    struct Transition {
        Tensor state;      ///< [size, size, frames].
        std::int32_t action;
        float reward;
        Tensor next_state;
        bool done;
    };

    void
    ResetFrameStack()
    {
        frames_.clear();
        const Tensor first = env_->Reset();
        for (int i = 0; i < kFrames; ++i) {
            frames_.push_back(first);
        }
    }

    /** Stacks the last kFrames frames into [n=1, size, size, kFrames]. */
    Tensor
    CurrentState(std::int64_t batch) const
    {
        const std::int64_t size = env_->frame_size();
        Tensor state = Tensor::Zeros(Shape{batch, size, size, kFrames});
        float* p = state.data<float>();
        for (int f = 0; f < kFrames; ++f) {
            const float* src = frames_[static_cast<std::size_t>(f)]
                                   .data<float>();
            for (std::int64_t i = 0; i < size * size; ++i) {
                p[i * kFrames + f] = src[i];
            }
        }
        return state;
    }

    data::EnvStep
    StepEnv(std::int32_t action)
    {
        const auto result = env_->Step(
            static_cast<data::MiniAtari::Action>(action));
        frames_.pop_front();
        frames_.push_back(result.frame);
        if (result.episode_done) {
            ResetFrameStack();
        }
        return result;
    }

    void
    ActAndRecord(float epsilon)
    {
        const Tensor state = CurrentState(1);
        std::int32_t action;
        if (policy_rng_.Uniform() < epsilon) {
            action = static_cast<std::int32_t>(
                policy_rng_.UniformInt(data::MiniAtari::kNumActions));
        } else {
            runtime::FeedMap feeds;
            feeds[states_.node] = state;
            const auto out = session_->Run(feeds, {greedy_action_});
            action = out[0].data<std::int32_t>()[0];
        }
        const auto result = StepEnv(action);

        Transition t;
        t.state = state.Reshape(Shape{env_->frame_size(), env_->frame_size(),
                                      kFrames});
        t.action = action;
        t.reward = result.reward;
        t.next_state = CurrentState(1).Reshape(
            Shape{env_->frame_size(), env_->frame_size(), kFrames});
        t.done = result.episode_done;
        replay_.push_back(std::move(t));
        if (replay_.size() > kReplayCapacity) {
            replay_.pop_front();
        }
    }

    /**
     * Samples a replay minibatch and computes Bellman targets (running
     * the current network for max_a' Q(s', a')), returning the full
     * training feed map. The caller runs the update step.
     */
    data::FeedBatch
    AssembleMinibatch()
    {
        const std::int64_t size = env_->frame_size();
        Tensor states = Tensor::Zeros(Shape{batch_, size, size, kFrames});
        Tensor next_states =
            Tensor::Zeros(Shape{batch_, size, size, kFrames});
        Tensor actions = Tensor::Zeros(Shape{batch_}, DType::kInt32);
        std::vector<float> rewards(static_cast<std::size_t>(batch_));
        std::vector<bool> done(static_cast<std::size_t>(batch_));

        const std::int64_t frame_elems = size * size * kFrames;
        for (std::int64_t i = 0; i < batch_; ++i) {
            const auto& t = replay_[static_cast<std::size_t>(
                policy_rng_.UniformInt(
                    static_cast<std::int64_t>(replay_.size())))];
            std::copy(t.state.data<float>(),
                      t.state.data<float>() + frame_elems,
                      states.data<float>() + i * frame_elems);
            std::copy(t.next_state.data<float>(),
                      t.next_state.data<float>() + frame_elems,
                      next_states.data<float>() + i * frame_elems);
            actions.data<std::int32_t>()[i] = t.action;
            rewards[static_cast<std::size_t>(i)] = t.reward;
            done[static_cast<std::size_t>(i)] = t.done;
        }

        // Bellman targets from the current network (2013-style, no
        // separate target network).
        runtime::FeedMap next_feeds;
        next_feeds[states_.node] = next_states;
        const Tensor q_next = session_->Run(next_feeds, {q_values_})[0];
        Tensor targets = Tensor::Zeros(Shape{batch_});
        for (std::int64_t i = 0; i < batch_; ++i) {
            float best = q_next.data<float>()[i * data::MiniAtari::kNumActions];
            for (int a = 1; a < data::MiniAtari::kNumActions; ++a) {
                best = std::max(
                    best,
                    q_next.data<float>()[i * data::MiniAtari::kNumActions + a]);
            }
            targets.data<float>()[i] =
                rewards[static_cast<std::size_t>(i)] +
                (done[static_cast<std::size_t>(i)] ? 0.0f : kGamma * best);
        }

        return {{states_.node, states},
                {actions_.node, actions},
                {targets_.node, targets}};
    }

    static constexpr std::int64_t kGrid = 21;
    static constexpr std::int64_t kScale = 2;
    static constexpr int kFrames = 4;
    static constexpr float kGamma = 0.95f;
    static constexpr std::size_t kReplayCapacity = 500;

    std::int64_t batch_ = 8;
    std::unique_ptr<data::MiniAtari> env_;
    Rng policy_rng_{0};
    std::deque<Tensor> frames_;
    std::deque<Transition> replay_;
    std::int64_t total_updates_ = 0;

    nn::Trainables trainables_;
    Output states_, actions_, targets_, q_values_, greedy_action_, loss_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

void
RegisterDeepQ()
{
    WorkloadRegistry::Global().Register(
        "deepq", [] { return std::make_unique<DeepQWorkload>(); });
}

}  // namespace fathom::workloads
