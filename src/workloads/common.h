/**
 * @file
 * Shared helpers for the workload implementations.
 */
#ifndef FATHOM_WORKLOADS_COMMON_H
#define FATHOM_WORKLOADS_COMMON_H

#include <chrono>
#include <functional>

#include "workloads/workload.h"

namespace fathom::workloads {

/**
 * Runs @p step_fn @p steps times, timing the whole loop (data
 * generation included, mirroring a real training loop) and aggregating
 * per-step losses.
 */
inline StepResult
TimeSteps(int steps, const std::function<float(int)>& step_fn)
{
    StepResult result;
    result.steps = steps;
    const auto start = std::chrono::steady_clock::now();
    double loss_sum = 0.0;
    for (int i = 0; i < steps; ++i) {
        result.final_loss = step_fn(i);
        loss_sum += static_cast<double>(result.final_loss);
    }
    result.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    result.mean_loss =
        steps > 0 ? static_cast<float>(loss_sum / steps) : 0.0f;
    return result;
}

/**
 * @return the graph-node name of @p out in @p session's graph (what a
 * serving client keys its request feeds by — placeholder Outputs are
 * session-local, names are not).
 */
inline std::string
PlaceholderName(const runtime::Session& session, graph::Output out)
{
    return session.graph().node(out.node).name;
}

}  // namespace fathom::workloads

#endif  // FATHOM_WORKLOADS_COMMON_H
