#include "workloads/workload.h"

#include <mutex>
#include <stdexcept>

#include "ops/register.h"
#include "telemetry/metrics.h"

namespace fathom::workloads {

std::unique_ptr<runtime::Session>
Workload::MakeSession(const WorkloadConfig& config)
{
    config_ = config;
    auto session = std::make_unique<runtime::Session>(config.seed);
    session->SetThreads(config.threads);
    session->SetInterOpThreads(config.inter_op_threads);
    session->SetMemoryPlanning(config.memory_planner);
    session->SetGraphOptimization(config.graph_rewrites);
    session->SetRewriteOptions(config.rewrites);
    session->SetVerification(config.graph_verification);
    session->tracer().set_enabled(config.tracing);
    telemetry::MetricsRegistry::set_enabled(config.telemetry);
    return session;
}

std::unique_ptr<data::InputPipeline>
Workload::MakePipeline(const std::string& stream, std::int64_t start_step,
                       data::BatchFn fn, bool stateful)
{
    data::InputPipelineOptions options;
    options.prefetch_depth = stateful ? 0 : config_.prefetch_depth;
    options.producer_threads = config_.producer_threads;
    options.start_step = start_step;
    if (session_ && session_->tracer().enabled()) {
        options.tracer = &session_->tracer();
    }
    options.name = name() + "/" + stream;
    return std::make_unique<data::InputPipeline>(std::move(fn),
                                                 std::move(options));
}

float
Workload::EvaluateAccuracy(int batches)
{
    (void)batches;
    throw std::logic_error("workload '" + name() +
                           "' has no accuracy metric");
}

serving::InferenceSignature
Workload::ServingSignature() const
{
    throw std::logic_error("workload '" + name() +
                           "' has no serving endpoint");
}

serving::RequestFeeds
Workload::SampleServingRequest()
{
    throw std::logic_error("workload '" + name() +
                           "' has no serving endpoint");
}

std::shared_ptr<const serving::FrozenPlan>
Workload::FreezeServingPlan(const serving::FrozenPlanOptions& options) const
{
    return serving::FrozenPlan::Freeze(session(), ServingSignature(),
                                       options);
}

runtime::Session&
Workload::session()
{
    if (!session_) {
        throw std::logic_error("Workload::session: call Setup() first");
    }
    return *session_;
}

const runtime::Session&
Workload::session() const
{
    if (!session_) {
        throw std::logic_error("Workload::session: call Setup() first");
    }
    return *session_;
}

std::int64_t
Workload::num_parameters() const
{
    std::int64_t total = 0;
    for (const auto& name : session().variables().Names()) {
        // Count only model parameters: skip embedded constants and
        // optimizer slots.
        if (name.rfind("__const/", 0) == 0 ||
            name.find("/momentum") != std::string::npos ||
            name.find("/rms") != std::string::npos ||
            name.find("/adam_") != std::string::npos) {
            continue;
        }
        const Tensor& value = session().variables().Get(name);
        if (value.dtype() == DType::kFloat32) {
            total += value.num_elements();
        }
    }
    return total;
}

WorkloadRegistry&
WorkloadRegistry::Global()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::Register(const std::string& name, Factory factory)
{
    if (factories_.count(name)) {
        throw std::logic_error("WorkloadRegistry: duplicate '" + name + "'");
    }
    factories_[name] = std::move(factory);
    order_.push_back(name);
}

std::unique_ptr<Workload>
WorkloadRegistry::Create(const std::string& name) const
{
    auto it = factories_.find(name);
    if (it == factories_.end()) {
        throw std::out_of_range("WorkloadRegistry: unknown workload '" +
                                name + "'");
    }
    return it->second();
}

std::vector<std::string>
WorkloadRegistry::Names() const
{
    return order_;
}

// Implemented by the per-model translation units.
void RegisterSeq2Seq();
void RegisterMemNet();
void RegisterSpeech();
void RegisterAutoenc();
void RegisterResidual();
void RegisterVgg();
void RegisterAlexNet();
void RegisterDeepQ();

void
RegisterAllWorkloads()
{
    static std::once_flag once;
    std::call_once(once, [] {
        ops::RegisterStandardOps();
        // Table II order.
        RegisterSeq2Seq();
        RegisterMemNet();
        RegisterSpeech();
        RegisterAutoenc();
        RegisterResidual();
        RegisterVgg();
        RegisterAlexNet();
        RegisterDeepQ();
    });
}

}  // namespace fathom::workloads
