/**
 * @file
 * alexnet — Krizhevsky et al. 2012, the watershed deep CNN.
 *
 * Structure is kept exact: five convolutional layers (with LRN after
 * conv1/conv2 and max-pooling after conv1/conv2/conv5), followed by
 * three fully-connected layers with dropout. Dimensions are scaled to
 * single-core scale: 64x64x3 inputs, channel counts divided by 8, and
 * 16 synthetic ImageNet-substitute classes. Optimizer: SGD with
 * momentum, as in the original paper.
 */
#include "data/synthetic_image.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

using graph::Output;

class AlexNetWorkload : public Workload {
  public:
    std::string name() const override { return "alexnet"; }
    std::string
    description() const override
    {
        return "Image classifier. Watershed for deep learning by beating "
               "hand-tuned image systems at ILSVRC 2012.";
    }
    std::string neuronal_style() const override { return "Convolutional, Full"; }
    int num_layers() const override { return 5; }
    std::string learning_task() const override { return "Supervised"; }
    std::string dataset() const override { return "synthetic-imagenet"; }

    void
    Setup(const WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 4;
        session_ = MakeSession(config);
        dataset_ = std::make_unique<data::SyntheticImageDataset>(
            kInput, 3, kClasses, config.seed ^ 0xA1E);

        Rng init_rng(config.seed * 31 + 1);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "alexnet");

        images_ = b.Placeholder("images");
        labels_ = b.Placeholder("labels");

        // Convolutional trunk (shared by inference and training heads).
        Output x = images_;
        x = nn::Conv2DLayer(b, &trainables_, init_rng, "conv1", x, 11, 3, 12,
                            2, "SAME");
        x = b.Lrn(x, 2, 2.0f, 1e-4f, 0.75f);
        x = b.MaxPool(x, 3, 2, "SAME");  // 32 -> 16
        x = nn::Conv2DLayer(b, &trainables_, init_rng, "conv2", x, 5, 12, 32,
                            1, "SAME");
        x = b.Lrn(x, 2, 2.0f, 1e-4f, 0.75f);
        x = b.MaxPool(x, 3, 2, "SAME");  // 16 -> 8
        x = nn::Conv2DLayer(b, &trainables_, init_rng, "conv3", x, 3, 32, 48,
                            1, "SAME");
        x = nn::Conv2DLayer(b, &trainables_, init_rng, "conv4", x, 3, 48, 48,
                            1, "SAME");
        x = nn::Conv2DLayer(b, &trainables_, init_rng, "conv5", x, 3, 48, 32,
                            1, "SAME");
        x = b.MaxPool(x, 3, 2, "SAME");  // 8 -> 4
        const std::int64_t flat = 4 * 4 * 32;
        const Output features = b.Reshape(x, {-1, flat});

        // FC head parameters, shared between the two heads below.
        const auto fc6 = nn::MakeDense(b, &trainables_, init_rng, "fc6",
                                       flat, 256);
        const auto fc7 =
            nn::MakeDense(b, &trainables_, init_rng, "fc7", 256, 256);
        const auto fc8 =
            nn::MakeDense(b, &trainables_, init_rng, "fc8", 256, kClasses);

        // Inference head: no dropout.
        {
            graph::ScopeGuard head(b, "infer");
            Output h = nn::ApplyDense(b, fc6, features, nn::Activation::kRelu);
            h = nn::ApplyDense(b, fc7, h, nn::Activation::kRelu);
            logits_ = nn::ApplyDense(b, fc8, h);
            predictions_ = b.ArgMax(logits_);
        }

        // Training head: dropout on fc6/fc7, cross-entropy, momentum SGD.
        {
            graph::ScopeGuard head(b, "train_head");
            Output h = nn::ApplyDense(b, fc6, features, nn::Activation::kRelu);
            h = nn::Dropout(b, h, 0.5f, /*training=*/true);
            h = nn::ApplyDense(b, fc7, h, nn::Activation::kRelu);
            h = nn::Dropout(b, h, 0.5f, /*training=*/true);
            const Output train_logits = nn::ApplyDense(b, fc8, h);
            loss_ = b.SoftmaxCrossEntropy(train_logits, labels_)[0];
        }
        train_op_ = nn::Minimize(b, loss_, trainables_,
                                 nn::OptimizerConfig::Momentum(0.01f, 0.9f));
    }


    bool has_accuracy_metric() const override { return true; }
    bool has_serving_endpoint() const override { return true; }

    serving::InferenceSignature
    ServingSignature() const override
    {
        // The dropout-free inference head is already deterministic, so
        // it freezes as-is; any leading batch dimension works.
        serving::InferenceSignature sig;
        sig.inputs = {{PlaceholderName(*session_, images_), DType::kFloat32,
                       {kInput, kInput, 3}}};
        sig.fetches = {logits_, predictions_};
        sig.output_names = {"logits", "predictions"};
        return sig;
    }

    serving::RequestFeeds
    SampleServingRequest() override
    {
        const auto batch = dataset_->NextBatch(1);
        return {{PlaceholderName(*session_, images_), batch.images}};
    }

    float
    EvaluateAccuracy(int batches) override
    {
        auto pipeline =
            MakePipeline("eval", eval_step_, [this](std::int64_t t) {
                return BatchFeeds(kEvalStreamBase + t);
            });
        int correct = 0;
        int total = 0;
        for (int i = 0; i < batches; ++i) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {predictions_});
            const Tensor& labels = feeds.at(labels_.node);
            for (std::int64_t j = 0; j < batch_; ++j) {
                correct += out[0].data<std::int32_t>()[j] ==
                           labels.data<std::int32_t>()[j];
                ++total;
            }
        }
        eval_step_ += batches;
        return static_cast<float>(correct) / static_cast<float>(total);
    }

    StepResult
    RunInference(int steps) override
    {
        auto pipeline =
            MakePipeline("infer", infer_step_, [this](std::int64_t t) {
                return BatchFeeds(kInferStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            session_->Run(feeds, {predictions_});
            return 0.0f;
        });
        infer_step_ += steps;
        return result;
    }

    StepResult
    RunTraining(int steps) override
    {
        auto pipeline =
            MakePipeline("train", train_step_, [this](std::int64_t t) {
                return BatchFeeds(kTrainStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {loss_}, {train_op_});
            return out[0].scalar_value();
        });
        train_step_ += steps;
        return result;
    }

  private:
    static constexpr std::int64_t kInput = 64;
    static constexpr std::int64_t kClasses = 16;

    /**
     * Materializes stream batch @p index as a full feed map. The label
     * feed is unused (pruned) on the inference path but carried anyway
     * so accuracy evaluation reads labels from the same batch the
     * predictions came from.
     */
    data::FeedBatch
    BatchFeeds(std::int64_t index) const
    {
        const auto batch =
            dataset_->BatchAt(static_cast<std::uint64_t>(index), batch_);
        return {{images_.node, batch.images}, {labels_.node, batch.labels}};
    }

    std::int64_t batch_ = 4;
    std::unique_ptr<data::SyntheticImageDataset> dataset_;
    nn::Trainables trainables_;
    Output images_, labels_, logits_, predictions_, loss_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

void
RegisterAlexNet()
{
    WorkloadRegistry::Global().Register("alexnet", [] {
        return std::make_unique<AlexNetWorkload>();
    });
}

}  // namespace fathom::workloads
