/**
 * @file
 * memnet — Sukhbaatar et al.'s end-to-end memory network.
 *
 * The full architecture of the original: stories are embedded into an
 * indirectly addressable memory (one slot per sentence, position
 * encoding within sentences), the question embedding queries the
 * memory with softmax attention, and three stacked hops with adjacent
 * weight sharing (A_{k+1} = C_k, W = C_K^T) refine the answer. The
 * bAbI question-answering data is the synthetic generator, which poses
 * genuine one- and two-supporting-fact deductions.
 *
 * The op mix deliberately matches the paper's Fig. 6c: many small
 * Gather/Mul/Tile/Sum/Softmax operations over skinny tensors.
 */
#include "data/synthetic_babi.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

using graph::Output;

class MemNetWorkload : public Workload {
  public:
    std::string name() const override { return "memnet"; }
    std::string
    description() const override
    {
        return "Facebook's memory-oriented neural system. One of two novel "
               "architectures which explore a topology beyond feed-forward "
               "lattices of neurons.";
    }
    std::string neuronal_style() const override { return "Memory Network"; }
    int num_layers() const override { return 3; }
    std::string learning_task() const override { return "Supervised"; }
    std::string dataset() const override { return "synthetic-babi"; }

    void
    Setup(const WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 8;
        session_ = MakeSession(config);
        dataset_ = std::make_unique<data::SyntheticBabiDataset>(
            kSentences, kSentenceLen, /*two_hop=*/true, config.seed ^ 0xBAB1);
        vocab_ = dataset_->vocab();

        Rng init_rng(config.seed * 31 + 8);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "memnet");

        stories_ = b.Placeholder("stories");      // int32 [B, S, L]
        questions_ = b.Placeholder("questions");  // int32 [B, L]
        answers_ = b.Placeholder("answers");      // int32 [B] (token ids)

        // Adjacent weight sharing uses kHops+1 tables:
        //   A_k = table[k-1], C_k = table[k], B = table[0], W = table[K]^T.
        std::vector<Output> tables;
        for (int k = 0; k <= kHops; ++k) {
            tables.push_back(trainables_.NewVariable(
                b, "embedding_" + std::to_string(k),
                nn::GlorotUniform(init_rng, Shape{vocab_, kEmbed}, vocab_,
                                  kEmbed)));
        }
        // Temporal encoding T_A/T_C (Sukhbaatar et al., Sec. 4.1):
        // trainable per-slot vectors added to the memory embeddings so
        // the model can order events ("last location" questions are
        // unanswerable from a pure bag of words). Shared adjacently
        // like the word embeddings.
        std::vector<Output> temporal;
        for (int k = 0; k <= kHops; ++k) {
            temporal.push_back(trainables_.NewVariable(
                b, "temporal_" + std::to_string(k),
                nn::GlorotUniform(init_rng, Shape{kSentences, kEmbed},
                                  kSentences, kEmbed)));
        }

        // Position encoding (Sukhbaatar et al., eq. 4) as a constant.
        const Output pe = b.Const(PositionEncoding(), "position_encoding");

        // Question embedding u = sum_j PE_j * B(q_j).
        Output u = b.ReduceSum(
            b.Mul(b.Gather(tables[0], questions_), pe), {1}, false);

        for (int hop = 0; hop < kHops; ++hop) {
            graph::ScopeGuard hop_scope(b, "hop" + std::to_string(hop));
            // Memory and output representations of every sentence.
            const Output m = b.Add(
                SentenceMemory(b, tables[static_cast<std::size_t>(hop)], pe),
                temporal[static_cast<std::size_t>(hop)]);
            const Output c = b.Add(
                SentenceMemory(b, tables[static_cast<std::size_t>(hop + 1)],
                               pe),
                temporal[static_cast<std::size_t>(hop + 1)]);

            // Match scores p = softmax(u . m_i), via an explicit Tile of
            // the query across memory slots (the original's op mix).
            const Output u_tiled = b.Tile(
                b.Reshape(u, {batch_, 1, kEmbed}), {1, kSentences, 1});
            const Output scores =
                b.ReduceSum(b.Mul(u_tiled, m), {2}, false);  // [B, S]
            const Output p = b.Softmax(scores);

            // Response o = sum_i p_i c_i; next query u = u + o.
            const Output p3 = b.Reshape(p, {batch_, kSentences, 1});
            const Output o = b.ReduceSum(b.Mul(p3, c), {1}, false);
            u = b.Add(u, o);
        }

        // Answer: W = C_K^T weight tying -> logits over the vocabulary.
        logits_ = b.MatMul(u, tables.back(), false, /*transpose_b=*/true);
        predictions_ = b.ArgMax(logits_);
        loss_ = b.SoftmaxCrossEntropy(logits_, answers_)[0];
        // The original annealed plain SGD with a "linear start" warmup
        // to escape the attention plateau; at this scale Adam with
        // gradient clipping reaches the same basin in a few hundred
        // steps, which keeps the verified-learning tests fast.
        auto optimizer = nn::OptimizerConfig::Adam(3e-3f);
        optimizer.clip_value = 5.0f;
        train_op_ = nn::Minimize(b, loss_, trainables_, optimizer);
    }


    bool has_accuracy_metric() const override { return true; }
    bool has_serving_endpoint() const override { return true; }

    serving::InferenceSignature
    ServingSignature() const override
    {
        // The Tile/Reshape attention plumbing bakes batch_ into the
        // graph, so the plan only executes at exactly that batch; the
        // dynamic batcher pads short batches up to it.
        serving::InferenceSignature sig;
        sig.inputs = {{PlaceholderName(*session_, stories_), DType::kInt32,
                       {kSentences, kSentenceLen}},
                      {PlaceholderName(*session_, questions_), DType::kInt32,
                       {kSentenceLen}}};
        sig.fetches = {logits_, predictions_};
        sig.output_names = {"logits", "predictions"};
        sig.fixed_batch = batch_;
        return sig;
    }

    serving::RequestFeeds
    SampleServingRequest() override
    {
        auto batch = dataset_->NextBatch(1);
        return {{PlaceholderName(*session_, stories_), batch.stories},
                {PlaceholderName(*session_, questions_), batch.questions}};
    }

    float
    EvaluateAccuracy(int batches) override
    {
        auto pipeline =
            MakePipeline("eval", eval_step_, [this](std::int64_t t) {
                return BatchFeeds(kEvalStreamBase + t);
            });
        int correct = 0;
        int total = 0;
        for (int i = 0; i < batches; ++i) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {predictions_});
            // The answer feed already carries vocabulary token ids, so
            // predictions compare directly.
            const Tensor& labels = feeds.at(answers_.node);
            for (std::int64_t j = 0; j < batch_; ++j) {
                correct += out[0].data<std::int32_t>()[j] ==
                           labels.data<std::int32_t>()[j];
                ++total;
            }
        }
        eval_step_ += batches;
        return static_cast<float>(correct) / static_cast<float>(total);
    }

    StepResult
    RunInference(int steps) override
    {
        auto pipeline =
            MakePipeline("infer", infer_step_, [this](std::int64_t t) {
                return BatchFeeds(kInferStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            session_->Run(feeds, {predictions_});
            return 0.0f;
        });
        infer_step_ += steps;
        return result;
    }

    StepResult
    RunTraining(int steps) override
    {
        auto pipeline =
            MakePipeline("train", train_step_, [this](std::int64_t t) {
                return BatchFeeds(kTrainStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {loss_}, {train_op_});
            return out[0].scalar_value();
        });
        train_step_ += steps;
        return result;
    }

  private:
    /** Embeds all story sentences: [B,S,L] -> sum_L -> [B,S,E]. */
    Output
    SentenceMemory(graph::GraphBuilder& b, Output table, Output pe)
    {
        const Output embedded = b.Gather(table, stories_);  // [B,S,L,E]
        return b.ReduceSum(b.Mul(embedded, pe), {2}, false);
    }

    /** The l_kj position-encoding matrix, [L, E]. */
    Tensor
    PositionEncoding() const
    {
        Tensor pe(DType::kFloat32, Shape{kSentenceLen, kEmbed});
        const float big_j = static_cast<float>(kSentenceLen);
        const float big_d = static_cast<float>(kEmbed);
        for (std::int64_t j = 0; j < kSentenceLen; ++j) {
            for (std::int64_t k = 0; k < kEmbed; ++k) {
                const float jj = static_cast<float>(j + 1);
                const float kk = static_cast<float>(k + 1);
                pe.data<float>()[j * kEmbed + k] =
                    (1.0f - jj / big_j) -
                    (kk / big_d) * (1.0f - 2.0f * jj / big_j);
            }
        }
        return pe;
    }

    /**
     * Materializes stream batch @p index as a full feed map. The
     * answer feed carries vocabulary token ids (the answer word),
     * matching the original model's vocabulary-wide softmax; it is
     * unused (pruned) on the inference path.
     */
    data::FeedBatch
    BatchFeeds(std::int64_t index) const
    {
        const auto batch =
            dataset_->BatchAt(static_cast<std::uint64_t>(index), batch_);
        Tensor labels(DType::kInt32, Shape{batch_});
        const std::int32_t location_base = static_cast<std::int32_t>(
            vocab_ - data::SyntheticBabiDataset::kNumLocations);
        for (std::int64_t i = 0; i < batch_; ++i) {
            labels.data<std::int32_t>()[i] =
                location_base + batch.answers.data<std::int32_t>()[i];
        }
        return {{stories_.node, batch.stories},
                {questions_.node, batch.questions},
                {answers_.node, labels}};
    }

    static constexpr std::int64_t kSentences = 20;
    static constexpr std::int64_t kSentenceLen = 6;
    static constexpr std::int64_t kEmbed = 32;
    static constexpr int kHops = 3;

    std::int64_t batch_ = 8;
    std::int64_t vocab_ = 0;
    std::unique_ptr<data::SyntheticBabiDataset> dataset_;
    nn::Trainables trainables_;
    Output stories_, questions_, answers_, logits_, predictions_, loss_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

void
RegisterMemNet()
{
    WorkloadRegistry::Global().Register("memnet", [] {
        return std::make_unique<MemNetWorkload>();
    });
}

}  // namespace fathom::workloads
