/**
 * @file
 * residual — He et al.'s ResNet-34, the ILSVRC 2015 winner.
 *
 * The 34-weight-layer structure is exact: one stem convolution, four
 * stages of [3, 4, 6, 3] two-convolution residual blocks (identity
 * shortcuts, with 1x1 projections at stage boundaries), batch
 * normalization after every convolution, global average pooling, and a
 * single fully-connected classifier — the near-elimination of FC
 * layers the paper's Sec. V-B highlights. Widths are divided for
 * single-core scale; inputs are 32x32.
 *
 * Batch normalization is implemented with the full training/inference
 * split: the training path normalizes with batch statistics and
 * maintains exponential moving averages; the inference path (shared
 * parameters, separate subgraph) normalizes with the running
 * statistics, exactly as a deployed ResNet does.
 */
#include "data/synthetic_image.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

using graph::Output;

class ResidualWorkload : public Workload {
  public:
    std::string name() const override { return "residual"; }
    std::string
    description() const override
    {
        return "Image classifier from Microsoft Research Asia. Dramatically "
               "increased the practical depth of convolutional networks. "
               "ILSVRC 2015 winner.";
    }
    std::string neuronal_style() const override { return "Convolutional"; }
    int num_layers() const override { return 34; }
    std::string learning_task() const override { return "Supervised"; }
    std::string dataset() const override { return "synthetic-imagenet"; }

    void
    Setup(const WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 4;
        session_ = MakeSession(config);
        dataset_ = std::make_unique<data::SyntheticImageDataset>(
            kInput, 3, kClasses, config.seed ^ 0x2E5);

        Rng init_rng(config.seed * 31 + 3);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "residual");

        images_ = b.Placeholder("images");
        labels_ = b.Placeholder("labels");

        // ---- shared parameters ------------------------------------------
        stem_ = nn::MakeConv2D(b, &trainables_, init_rng, "conv1", 3, 3, 8);
        stem_bn_ = nn::MakeBatchNorm(b, &trainables_, "bn1", 8);

        const struct {
            int blocks;
            std::int64_t channels;
        } stages[] = {{3, 8}, {4, 16}, {6, 32}, {3, 64}};

        std::int64_t in_c = 8;
        int block_index = 0;
        for (const auto& stage : stages) {
            for (int blk = 0; blk < stage.blocks; ++blk) {
                const std::int64_t out_c = stage.channels;
                const std::int64_t stride =
                    (in_c != out_c && blk == 0) ? 2 : 1;
                blocks_.push_back(MakeBlock(
                    b, init_rng, "block" + std::to_string(block_index++),
                    in_c, out_c, stride));
                in_c = out_c;
            }
        }
        fc_ = nn::MakeDense(b, &trainables_, init_rng, "fc", in_c, kClasses);

        // ---- training path (batch statistics + EMA updates) --------------
        std::vector<graph::NodeId> stat_updates;
        const Output train_logits =
            BuildPath(b, images_, /*training=*/true, &stat_updates);
        loss_ = b.SoftmaxCrossEntropy(train_logits, labels_)[0];
        const graph::NodeId optimize = nn::Minimize(
            b, loss_, trainables_, nn::OptimizerConfig::Momentum(0.05f, 0.9f));
        std::vector<graph::NodeId> all_updates = {optimize};
        all_updates.insert(all_updates.end(), stat_updates.begin(),
                           stat_updates.end());
        train_op_ = b.Group(all_updates, "train_and_update_stats");

        // ---- inference path (running statistics) --------------------------
        logits_ = BuildPath(b, images_, /*training=*/false, nullptr);
        predictions_ = b.ArgMax(logits_);
    }


    bool has_accuracy_metric() const override { return true; }
    bool has_serving_endpoint() const override { return true; }

    serving::InferenceSignature
    ServingSignature() const override
    {
        // The inference path normalizes with the running BN statistics
        // (plain Variable reads, no stat updates), so it freezes into
        // a pure subgraph with the EMAs snapshotted as weights.
        serving::InferenceSignature sig;
        sig.inputs = {{PlaceholderName(*session_, images_), DType::kFloat32,
                       {kInput, kInput, 3}}};
        sig.fetches = {logits_, predictions_};
        sig.output_names = {"logits", "predictions"};
        return sig;
    }

    serving::RequestFeeds
    SampleServingRequest() override
    {
        const auto batch = dataset_->NextBatch(1);
        return {{PlaceholderName(*session_, images_), batch.images}};
    }

    float
    EvaluateAccuracy(int batches) override
    {
        auto pipeline =
            MakePipeline("eval", eval_step_, [this](std::int64_t t) {
                return BatchFeeds(kEvalStreamBase + t);
            });
        int correct = 0;
        int total = 0;
        for (int i = 0; i < batches; ++i) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {predictions_});
            const Tensor& labels = feeds.at(labels_.node);
            for (std::int64_t j = 0; j < batch_; ++j) {
                correct += out[0].data<std::int32_t>()[j] ==
                           labels.data<std::int32_t>()[j];
                ++total;
            }
        }
        eval_step_ += batches;
        return static_cast<float>(correct) / static_cast<float>(total);
    }

    StepResult
    RunInference(int steps) override
    {
        auto pipeline =
            MakePipeline("infer", infer_step_, [this](std::int64_t t) {
                return BatchFeeds(kInferStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            session_->Run(feeds, {predictions_});
            return 0.0f;
        });
        infer_step_ += steps;
        return result;
    }

    StepResult
    RunTraining(int steps) override
    {
        auto pipeline =
            MakePipeline("train", train_step_, [this](std::int64_t t) {
                return BatchFeeds(kTrainStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {loss_}, {train_op_});
            return out[0].scalar_value();
        });
        train_step_ += steps;
        return result;
    }

  private:
    /**
     * Materializes stream batch @p index as a full feed map. The label
     * feed is unused (pruned) on the inference path but carried anyway
     * so accuracy evaluation reads labels from the same batch the
     * predictions came from.
     */
    data::FeedBatch
    BatchFeeds(std::int64_t index) const
    {
        const auto batch =
            dataset_->BatchAt(static_cast<std::uint64_t>(index), batch_);
        return {{images_.node, batch.images}, {labels_.node, batch.labels}};
    }

    /** Shared parameters of one two-conv residual block. */
    struct BlockParams {
        bool has_projection = false;
        std::int64_t stride = 1;
        nn::ConvParams proj;
        nn::BatchNormParams proj_bn;
        nn::ConvParams conv_a;
        nn::BatchNormParams bn_a;
        nn::ConvParams conv_b;
        nn::BatchNormParams bn_b;
    };

    BlockParams
    MakeBlock(graph::GraphBuilder& b, Rng& rng, const std::string& name,
              std::int64_t in_c, std::int64_t out_c, std::int64_t stride)
    {
        graph::ScopeGuard scope(b, name);
        BlockParams block;
        block.stride = stride;
        if (stride != 1 || in_c != out_c) {
            block.has_projection = true;
            block.proj =
                nn::MakeConv2D(b, &trainables_, rng, "proj", 1, in_c, out_c);
            block.proj_bn = nn::MakeBatchNorm(b, &trainables_, "proj_bn",
                                              out_c);
        }
        block.conv_a =
            nn::MakeConv2D(b, &trainables_, rng, "conv_a", 3, in_c, out_c);
        block.bn_a = nn::MakeBatchNorm(b, &trainables_, "bn_a", out_c);
        block.conv_b =
            nn::MakeConv2D(b, &trainables_, rng, "conv_b", 3, out_c, out_c);
        block.bn_b = nn::MakeBatchNorm(b, &trainables_, "bn_b", out_c);
        return block;
    }

    /** Applies batch norm in the requested mode. */
    Output
    Normalize(graph::GraphBuilder& b, const nn::BatchNormParams& bn,
              Output x, bool training, std::vector<graph::NodeId>* updates)
    {
        if (training) {
            auto result = nn::ApplyBatchNormTraining(b, bn, x, kBnMomentum);
            updates->insert(updates->end(), result.stat_updates.begin(),
                            result.stat_updates.end());
            return result.y;
        }
        return nn::ApplyBatchNormInference(b, bn, x);
    }

    /** Builds the full 34-layer forward pass over the shared params. */
    Output
    BuildPath(graph::GraphBuilder& b, Output x, bool training,
              std::vector<graph::NodeId>* updates)
    {
        graph::ScopeGuard scope(b, training ? "train_path" : "infer_path");
        Output h = nn::ApplyConv2D(b, stem_, x, 1, "SAME");
        h = b.Relu(Normalize(b, stem_bn_, h, training, updates));

        for (const BlockParams& block : blocks_) {
            Output shortcut = h;
            if (block.has_projection) {
                shortcut = nn::ApplyConv2D(b, block.proj, h, block.stride,
                                           "SAME");
                shortcut =
                    Normalize(b, block.proj_bn, shortcut, training, updates);
            }
            Output y = nn::ApplyConv2D(b, block.conv_a, h, block.stride,
                                       "SAME");
            y = b.Relu(Normalize(b, block.bn_a, y, training, updates));
            y = nn::ApplyConv2D(b, block.conv_b, y, 1, "SAME");
            y = Normalize(b, block.bn_b, y, training, updates);
            h = b.Relu(b.Add(y, shortcut));
        }

        const Output pooled = b.ReduceMean(h, {1, 2}, /*keep_dims=*/false);
        return nn::ApplyDense(b, fc_, pooled);
    }

    static constexpr std::int64_t kInput = 32;
    static constexpr std::int64_t kClasses = 16;
    static constexpr float kBnMomentum = 0.9f;

    std::int64_t batch_ = 4;
    std::unique_ptr<data::SyntheticImageDataset> dataset_;
    nn::Trainables trainables_;
    nn::ConvParams stem_;
    nn::BatchNormParams stem_bn_;
    std::vector<BlockParams> blocks_;
    nn::DenseParams fc_;
    Output images_, labels_, logits_, predictions_, loss_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

void
RegisterResidual()
{
    WorkloadRegistry::Global().Register("residual", [] {
        return std::make_unique<ResidualWorkload>();
    });
}

}  // namespace fathom::workloads
