/**
 * @file
 * speech — Hannun et al.'s Deep Speech.
 *
 * Faithful to the original's deliberately homogeneous design: three
 * fully-connected ReLU layers applied per spectrogram frame, one
 * bidirectional *simple* recurrent layer (explicitly not LSTM — the
 * paper quotes the authors on this choice), a fourth fully-connected
 * layer, a linear output layer, and CTC loss over unsegmented phoneme
 * transcriptions. Data is the synthetic-TIMIT generator, matching the
 * paper's own TIMIT substitution for Baidu's proprietary corpus.
 */
#include "data/synthetic_timit.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

using graph::Output;

class SpeechWorkload : public Workload {
  public:
    std::string name() const override { return "speech"; }
    std::string
    description() const override
    {
        return "Baidu's speech recognition engine. Proved purely "
               "deep-learned networks can beat hand-tuned systems.";
    }
    std::string neuronal_style() const override { return "Recurrent, Full"; }
    int num_layers() const override { return 5; }
    std::string learning_task() const override { return "Supervised"; }
    std::string dataset() const override { return "synthetic-timit"; }

    void
    Setup(const WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 2;
        session_ = MakeSession(config);
        dataset_ = std::make_unique<data::SyntheticTimitDataset>(
            kFreq, kPhonemes, kTime, config.seed ^ 0x5BEEC);

        Rng init_rng(config.seed * 31 + 6);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "speech");

        frames_ = b.Placeholder("frames");  // [B, T, F]
        labels_ = b.Placeholder("labels");  // int32 [B, Lmax], -1 padded.

        // Layers 1-3: per-frame fully-connected ReLU stack.
        Output x = b.Reshape(frames_, {-1, kFreq});  // [B*T, F]
        x = nn::Dense(b, &trainables_, init_rng, "fc1", x, kFreq, kHidden,
                      nn::Activation::kRelu);
        x = nn::Dense(b, &trainables_, init_rng, "fc2", x, kHidden, kHidden,
                      nn::Activation::kRelu);
        x = nn::Dense(b, &trainables_, init_rng, "fc3", x, kHidden, kHidden,
                      nn::Activation::kRelu);
        const Output h3 = b.Reshape(x, {batch_, kTime, kHidden});

        // Layer 4: bidirectional simple recurrent layer.
        const auto w_f = nn::MakeDense(b, &trainables_, init_rng, "rnn_fwd_in",
                                       kHidden, kHidden);
        const auto u_f = nn::MakeDense(b, &trainables_, init_rng,
                                       "rnn_fwd_rec", kHidden, kHidden);
        const auto w_b = nn::MakeDense(b, &trainables_, init_rng, "rnn_bwd_in",
                                       kHidden, kHidden);
        const auto u_b = nn::MakeDense(b, &trainables_, init_rng,
                                       "rnn_bwd_rec", kHidden, kHidden);

        std::vector<Output> per_step(static_cast<std::size_t>(kTime));
        for (std::int64_t t = 0; t < kTime; ++t) {
            per_step[static_cast<std::size_t>(t)] = b.Reshape(
                b.Slice(h3, {0, t, 0}, {-1, 1, -1}), {-1, kHidden});
        }

        Output h_fwd = b.Const(Tensor::Zeros(Shape{batch_, kHidden}), "hf0");
        std::vector<Output> fwd(static_cast<std::size_t>(kTime));
        for (std::int64_t t = 0; t < kTime; ++t) {
            h_fwd = b.Relu(b.Add(
                nn::ApplyDense(b, w_f, per_step[static_cast<std::size_t>(t)]),
                nn::ApplyDense(b, u_f, h_fwd)));
            fwd[static_cast<std::size_t>(t)] = h_fwd;
        }
        Output h_bwd = b.Const(Tensor::Zeros(Shape{batch_, kHidden}), "hb0");
        std::vector<Output> bwd(static_cast<std::size_t>(kTime));
        for (std::int64_t t = kTime - 1; t >= 0; --t) {
            h_bwd = b.Relu(b.Add(
                nn::ApplyDense(b, w_b, per_step[static_cast<std::size_t>(t)]),
                nn::ApplyDense(b, u_b, h_bwd)));
            bwd[static_cast<std::size_t>(t)] = h_bwd;
        }

        // h4 = h_fwd + h_bwd per step, restacked to [B*T, H].
        std::vector<Output> combined;
        combined.reserve(static_cast<std::size_t>(kTime));
        for (std::int64_t t = 0; t < kTime; ++t) {
            combined.push_back(b.Reshape(
                b.Add(fwd[static_cast<std::size_t>(t)],
                      bwd[static_cast<std::size_t>(t)]),
                {batch_, 1, kHidden}));
        }
        const Output h4 =
            b.Reshape(b.Concat(combined, 1), {-1, kHidden});  // [B*T, H]

        // Layer 5 and the linear output projection.
        Output h5 = nn::Dense(b, &trainables_, init_rng, "fc5", h4, kHidden,
                              kHidden, nn::Activation::kRelu);
        const Output flat_logits = nn::Dense(b, &trainables_, init_rng,
                                             "output", h5, kHidden, kClasses);
        logits_ = b.Reshape(flat_logits, {batch_, kTime, kClasses});

        // CTC loss per sequence, averaged over the batch (blank = 0).
        std::vector<Output> losses;
        for (std::int64_t i = 0; i < batch_; ++i) {
            const Output seq_logits = b.Reshape(
                b.Slice(logits_, {i, 0, 0}, {1, -1, -1}), {kTime, kClasses});
            const Output seq_labels = b.Slice(labels_, {i, 0}, {1, -1});
            losses.push_back(b.CtcLoss(seq_logits, seq_labels, 0)[0]);
        }
        loss_ = b.Mul(b.AddN(losses),
                      b.ScalarConst(1.0f / static_cast<float>(batch_)));
        train_op_ = nn::Minimize(b, loss_, trainables_,
                                 nn::OptimizerConfig::Momentum(1e-3f, 0.9f));
    }

    bool has_serving_endpoint() const override { return true; }

    serving::InferenceSignature
    ServingSignature() const override
    {
        // The unrolled bidirectional recurrence bakes batch_ into its
        // zero-state Consts and Reshapes, so the plan runs at exactly
        // that batch (the batcher pads up to it).
        serving::InferenceSignature sig;
        sig.inputs = {{PlaceholderName(*session_, frames_), DType::kFloat32,
                       {kTime, kFreq}}};
        sig.fetches = {logits_};
        sig.output_names = {"logits"};
        sig.fixed_batch = batch_;
        return sig;
    }

    serving::RequestFeeds
    SampleServingRequest() override
    {
        Tensor frames = Tensor::Zeros(Shape{1, kTime, kFreq});
        const auto utt = dataset_->Next();
        std::copy(utt.frames.data<float>(),
                  utt.frames.data<float>() + kTime * kFreq,
                  frames.data<float>());
        return {{PlaceholderName(*session_, frames_), frames}};
    }

    StepResult
    RunInference(int steps) override
    {
        auto pipeline =
            MakePipeline("infer", infer_step_, [this](std::int64_t t) {
                return BatchFeeds(kInferStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            session_->Run(feeds, {logits_});
            return 0.0f;
        });
        infer_step_ += steps;
        return result;
    }

    StepResult
    RunTraining(int steps) override
    {
        auto pipeline =
            MakePipeline("train", train_step_, [this](std::int64_t t) {
                return BatchFeeds(kTrainStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {loss_}, {train_op_});
            return out[0].scalar_value();
        });
        train_step_ += steps;
        return result;
    }

  private:
    /**
     * Materializes stream batch @p index: a batch of utterances
     * assembled into [B, T, F] frames plus -1-padded labels. The label
     * feed is unused (pruned) on the inference path.
     */
    data::FeedBatch
    BatchFeeds(std::int64_t index) const
    {
        const auto utterances =
            dataset_->BatchAt(static_cast<std::uint64_t>(index), batch_);
        Tensor frames = Tensor::Zeros(Shape{batch_, kTime, kFreq});
        Tensor labels = Tensor(DType::kInt32, Shape{batch_, kMaxLabels});
        std::int32_t* lp = labels.data<std::int32_t>();
        std::fill(lp, lp + labels.num_elements(), -1);
        for (std::int64_t i = 0; i < batch_; ++i) {
            const auto& utt = utterances[static_cast<std::size_t>(i)];
            std::copy(utt.frames.data<float>(),
                      utt.frames.data<float>() + kTime * kFreq,
                      frames.data<float>() + i * kTime * kFreq);
            const std::int64_t count = std::min<std::int64_t>(
                static_cast<std::int64_t>(utt.labels.size()), kMaxLabels);
            for (std::int64_t l = 0; l < count; ++l) {
                lp[i * kMaxLabels + l] =
                    utt.labels[static_cast<std::size_t>(l)];
            }
        }
        return {{frames_.node, frames}, {labels_.node, labels}};
    }

    static constexpr std::int64_t kTime = 30;
    static constexpr std::int64_t kFreq = 32;
    static constexpr std::int64_t kHidden = 128;
    static constexpr std::int64_t kPhonemes = 27;
    static constexpr std::int64_t kClasses = kPhonemes + 1;  // + blank.
    static constexpr std::int64_t kMaxLabels = kTime / 2;

    std::int64_t batch_ = 2;
    std::unique_ptr<data::SyntheticTimitDataset> dataset_;
    nn::Trainables trainables_;
    Output frames_, labels_, logits_, loss_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

void
RegisterSpeech()
{
    WorkloadRegistry::Global().Register(
        "speech", [] { return std::make_unique<SpeechWorkload>(); });
}

}  // namespace fathom::workloads
