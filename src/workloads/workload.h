/**
 * @file
 * The standard Fathom model interface.
 *
 * The paper's key logistical contribution is that "all Fathom models
 * are wrapped in a standard interface which exposes the same functions
 * for every model. Thus, evaluating training, inference, or simply
 * inspecting the model's dataflow graph is straightforward." This
 * class is that interface.
 */
#ifndef FATHOM_WORKLOADS_WORKLOAD_H
#define FATHOM_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/pipeline/input_pipeline.h"
#include "runtime/session.h"
#include "serving/frozen_plan.h"

namespace fathom::workloads {

/** Configuration common to all workloads. */
struct WorkloadConfig {
    std::uint64_t seed = 1;

    /** Minibatch size; 0 selects the model default. */
    std::int64_t batch_size = 0;

    /** Intra-op thread count (the Fig. 6 knob). */
    int threads = 1;

    /**
     * Inter-op thread count: independent graph ops executed
     * concurrently per step (values stay bit-identical; see
     * Session::SetInterOpThreads).
     */
    int inter_op_threads = 1;

    /**
     * Liveness-driven memory planner: drop each intermediate tensor at
     * its last consumer and recycle buffers through the pool (values
     * stay bit-identical; see Session::SetMemoryPlanning).
     */
    bool memory_planner = true;

    /**
     * Per-op execution tracing (timestamps, costs; the input of every
     * Figs. 1-6 analysis). On by default, matching historical behavior;
     * turn off for pure-throughput runs — with it off the executor
     * takes no per-op clock readings at all.
     */
    bool tracing = true;

    /**
     * Process-wide metrics collection (telemetry::MetricsRegistry):
     * executor queue depth, worker busy/idle, allocator hit rates,
     * GEMM pack reuse. Off by default; the registry is global, so this
     * flag is last-Setup-wins across concurrently configured
     * workloads.
     */
    bool telemetry = false;

    /**
     * Graph rewrite framework (constant folding, CSE, transpose
     * folding, elementwise fusion, in-place). Default on — every
     * pattern preserves bit-identical fetches, variables, and traces;
     * see graph/rewrite/rewrite.h.
     */
    bool graph_rewrites = true;

    /** Per-pattern knobs (effective when graph_rewrites is on). */
    graph::rewrite::RewriteOptions rewrites;

    /**
     * Static graph verification at every plan build (structure,
     * shape/dtype inference, aliasing/liveness/determinism lints).
     * Default on; see Session::SetVerification.
     */
    bool graph_verification = true;

    /**
     * Input-pipeline prefetch depth: how many pre-materialized feed
     * batches may wait in the bounded queue ahead of the consuming
     * step. 0 generates batches inline with each step (the historical
     * behavior); 1 is classic double buffering; >= 2 also absorbs
     * producer jitter. Batches are a pure function of (seed, step), so
     * fetches, losses, and traces are bit-identical at every depth;
     * see data::InputPipeline.
     */
    int prefetch_depth = 2;

    /** Background batch-producer threads (effective when depth > 0). */
    int producer_threads = 1;
};

/** Aggregate result of a timed run of steps. */
struct StepResult {
    int steps = 0;
    double wall_seconds = 0.0;  ///< total wall time across steps.
    float final_loss = 0.0f;    ///< last step's loss (training only).
    float mean_loss = 0.0f;     ///< mean loss across steps (training only).
};

/**
 * Base class of the eight Fathom models.
 *
 * Lifecycle: construct, Setup() once, then any mix of RunInference()
 * and RunTraining(). The session (graph, variables, tracer) is exposed
 * for the profiling tools.
 */
class Workload {
  public:
    virtual ~Workload() = default;

    /** Canonical short name, e.g. "alexnet". */
    virtual std::string name() const = 0;

    /** One-line description (Table II's "purpose" column). */
    virtual std::string description() const = 0;

    // ---- Table II metadata ------------------------------------------------

    /** Neuronal style, e.g. "Convolutional, Full". */
    virtual std::string neuronal_style() const = 0;

    /** Weight-layer count as reported in Table II. */
    virtual int num_layers() const = 0;

    /** Learning task: Supervised/Unsupervised/Reinforcement. */
    virtual std::string learning_task() const = 0;

    /** Dataset (the synthetic substitute's name). */
    virtual std::string dataset() const = 0;

    // ---- lifecycle --------------------------------------------------------

    /** Builds graphs and initializes parameters. Call exactly once. */
    virtual void Setup(const WorkloadConfig& config) = 0;

    /** Runs forward-only steps on fresh input batches. */
    virtual StepResult RunInference(int steps) = 0;

    /** Runs full forward+backward+update steps. */
    virtual StepResult RunTraining(int steps) = 0;

    /**
     * Task-level quality metric on fresh data, in [0, 1]: classification
     * accuracy for the supervised classifiers, answer accuracy for
     * memnet. Workloads without a natural accuracy (generative,
     * sequence-loss, reinforcement models) throw std::logic_error.
     * Part of the "verified reference implementation" contract: tests
     * assert this rises above chance with training.
     */
    virtual float EvaluateAccuracy(int batches);

    /** @return true if EvaluateAccuracy is meaningful for this model. */
    virtual bool has_accuracy_metric() const { return false; }

    // ---- serving ----------------------------------------------------------

    /**
     * @return true if the model declares a servable inference endpoint
     * (all eight Fathom models do; the flag exists so tests and tools
     * can feature-detect instead of catching).
     */
    virtual bool has_serving_endpoint() const { return false; }

    /**
     * Declares the model's serving endpoint against its live session:
     * per-example input specs (batch dim excluded), the deterministic
     * inference fetches, and whether the graph bakes in a fixed batch
     * size. Valid after Setup; the default throws std::logic_error.
     *
     * Models whose training-time inference path is stochastic (the
     * variational autoencoder samples its code) declare a
     * deterministic serving head instead — FrozenPlan rejects stateful
     * ops by design.
     */
    virtual serving::InferenceSignature ServingSignature() const;

    /**
     * @return one synthetic single-example request (each tensor shaped
     * [1, example dims]), keyed by placeholder node name — what a
     * client of the serving runtime would Submit(). Draws from the
     * model's dataset, so repeated calls yield distinct examples.
     */
    virtual serving::RequestFeeds SampleServingRequest();

    /**
     * Freezes the serving endpoint into an immutable, reentrant plan
     * (see serving::FrozenPlan::Freeze). The workload's session keeps
     * training independently afterwards.
     */
    std::shared_ptr<const serving::FrozenPlan> FreezeServingPlan(
        const serving::FrozenPlanOptions& options = {}) const;

    /** @return the session (graph, variables, trace). Valid after Setup. */
    runtime::Session& session();
    const runtime::Session& session() const;

    /** @return total trainable parameter count. Valid after Setup. */
    std::int64_t num_parameters() const;

  protected:
    /**
     * @return a session with every WorkloadConfig execution knob
     * applied (threads, inter-op width, memory planner, tracing,
     * telemetry). Every model's Setup() starts with this, so a new
     * knob lands in all eight workloads at once. Also retains the
     * config, which MakePipeline reads for the pipeline knobs.
     */
    std::unique_ptr<runtime::Session> MakeSession(
        const WorkloadConfig& config);

    /**
     * Builds the input pipeline for one run loop. Every workload's
     * RunTraining/RunInference/EvaluateAccuracy drains one of these
     * instead of generating batches inline; the WorkloadConfig
     * prefetch knobs apply uniformly this way.
     *
     * @param stream     lane-name suffix, e.g. "train".
     * @param start_step first step index the loop consumes (workloads
     *                   keep per-stream counters so repeated runs
     *                   continue their stream).
     * @param fn         the batch function; pure unless @p stateful.
     * @param stateful   true when @p fn must run inline, in order, on
     *                   the consumer thread (deepq's
     *                   policy-in-the-loop generation) — forces
     *                   prefetch depth 0 regardless of the config.
     */
    std::unique_ptr<data::InputPipeline> MakePipeline(
        const std::string& stream, std::int64_t start_step,
        data::BatchFn fn, bool stateful = false);

    std::unique_ptr<runtime::Session> session_;
    WorkloadConfig config_;

    // Per-stream step counters: each run loop continues its stream
    // where the previous call left off, so e.g. two RunTraining(2)
    // calls consume the same batches as one RunTraining(4).
    std::int64_t train_step_ = 0;
    std::int64_t infer_step_ = 0;
    std::int64_t eval_step_ = 0;
};

/**
 * Disjoint index bases for a model's independent batch streams.
 * Training batch t draws from stream index kTrainStreamBase + t,
 * inference from kInferStreamBase + t, etc., so the streams never
 * collide for any realistic step count.
 */
inline constexpr std::int64_t kTrainStreamBase = 0;
inline constexpr std::int64_t kInferStreamBase = std::int64_t{1} << 40;
inline constexpr std::int64_t kEvalStreamBase = std::int64_t{1} << 41;

/** Factory registry over the eight models. */
class WorkloadRegistry {
  public:
    using Factory = std::function<std::unique_ptr<Workload>()>;

    static WorkloadRegistry& Global();

    void Register(const std::string& name, Factory factory);

    /** @return a fresh workload; throws std::out_of_range if unknown. */
    std::unique_ptr<Workload> Create(const std::string& name) const;

    /** @return all names in the paper's Table II order. */
    std::vector<std::string> Names() const;

  private:
    std::map<std::string, Factory> factories_;
    std::vector<std::string> order_;
};

/** Registers the standard ops and all eight workloads. Idempotent. */
void RegisterAllWorkloads();

}  // namespace fathom::workloads

#endif  // FATHOM_WORKLOADS_WORKLOAD_H
