/**
 * @file
 * autoenc — Kingma & Welling's variational autoencoder.
 *
 * Faithful to the original: a fully-connected encoder producing the
 * mean and log-variance of a Gaussian embedding, the reparameterized
 * sample z = mu + sigma * eps (so stochastic sampling is part of
 * *inference*, the trait the paper calls out as unique), a
 * fully-connected Bernoulli decoder, and the ELBO loss (reconstruction
 * cross-entropy + KL divergence), optimized with Adam on synthetic
 * MNIST.
 */
#include "data/synthetic_mnist.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

using graph::Output;

class AutoencWorkload : public Workload {
  public:
    std::string name() const override { return "autoenc"; }
    std::string
    description() const override
    {
        return "Variational autoencoder. An efficient, generative model for "
               "feature learning.";
    }
    std::string neuronal_style() const override { return "Full"; }
    int num_layers() const override { return 3; }
    std::string learning_task() const override { return "Unsupervised"; }
    std::string dataset() const override { return "synthetic-mnist"; }

    void
    Setup(const WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 16;
        session_ = MakeSession(config);
        dataset_ = std::make_unique<data::SyntheticMnistDataset>(
            config.seed ^ 0xAE);

        Rng init_rng(config.seed * 31 + 4);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "autoenc");

        const std::int64_t features = data::SyntheticMnistDataset::kFeatures;
        inputs_ = b.Placeholder("inputs");

        // Encoder.
        Output h = nn::Dense(b, &trainables_, init_rng, "enc_fc", inputs_,
                             features, kHidden, nn::Activation::kRelu);
        mu_ = nn::Dense(b, &trainables_, init_rng, "enc_mu", h, kHidden,
                        kLatent);
        log_var_ = nn::Dense(b, &trainables_, init_rng, "enc_logvar", h,
                             kHidden, kLatent);

        // Reparameterized sampling: z = mu + exp(logvar / 2) * eps.
        const Output eps = b.RandomNormal({batch_, kLatent}, 0.0f, 1.0f);
        const Output sigma = b.Exp(b.Mul(b.ScalarConst(0.5f), log_var_));
        z_ = b.Add(mu_, b.Mul(sigma, eps));

        // Decoder (Bernoulli likelihood). Parameters are built once and
        // applied twice: to the sampled code here, and to the posterior
        // mean in the deterministic serving head below.
        const auto dec_fc = nn::MakeDense(b, &trainables_, init_rng,
                                          "dec_fc", kLatent, kHidden);
        const auto dec_out = nn::MakeDense(b, &trainables_, init_rng,
                                           "dec_out", kHidden, features);
        Output d = nn::ApplyDense(b, dec_fc, z_, nn::Activation::kRelu);
        reconstruction_ =
            nn::ApplyDense(b, dec_out, d, nn::Activation::kSigmoid);

        // Serving head: decode mu (the distribution's mean, i.e. eps =
        // 0). The sampled path is the workload's defining trait but
        // cannot be frozen — FrozenPlan rejects stateful ops — and the
        // mean decode is the standard deterministic deployment of a VAE.
        {
            graph::ScopeGuard head(b, "serve");
            Output sd = nn::ApplyDense(b, dec_fc, mu_, nn::Activation::kRelu);
            mean_reconstruction_ =
                nn::ApplyDense(b, dec_out, sd, nn::Activation::kSigmoid);
        }

        // ELBO = reconstruction cross-entropy + KL(q(z|x) || N(0, I)).
        const Output eps_c = b.ScalarConst(1e-7f, "eps");
        const Output one = b.ScalarConst(1.0f, "one");
        const Output recon_ll = b.Add(
            b.Mul(inputs_, b.Log(b.Add(reconstruction_, eps_c))),
            b.Mul(b.Sub(one, inputs_),
                  b.Log(b.Add(b.Sub(one, reconstruction_), eps_c))));
        const Output recon_loss = b.Neg(b.ReduceMean(
            b.ReduceSum(recon_ll, {1}, /*keep_dims=*/false), {}, false));

        const Output kl_terms =
            b.Sub(b.Add(one, log_var_),
                  b.Add(b.Square(mu_), b.Exp(log_var_)));
        const Output kl = b.Mul(
            b.ScalarConst(-0.5f),
            b.ReduceMean(b.ReduceSum(kl_terms, {1}, false), {}, false));

        loss_ = b.Add(recon_loss, kl);
        train_op_ = nn::Minimize(b, loss_, trainables_,
                                 nn::OptimizerConfig::Adam(1e-3f));
    }

    bool has_serving_endpoint() const override { return true; }

    serving::InferenceSignature
    ServingSignature() const override
    {
        serving::InferenceSignature sig;
        sig.inputs = {{PlaceholderName(*session_, inputs_), DType::kFloat32,
                       {data::SyntheticMnistDataset::kFeatures}}};
        sig.fetches = {mu_, mean_reconstruction_};
        sig.output_names = {"embedding", "reconstruction"};
        return sig;
    }

    serving::RequestFeeds
    SampleServingRequest() override
    {
        const auto batch = dataset_->NextBatch(1);
        return {{PlaceholderName(*session_, inputs_), batch.images}};
    }

    StepResult
    RunInference(int steps) override
    {
        // VAE inference reconstructs through the stochastic embedding.
        auto pipeline =
            MakePipeline("infer", infer_step_, [this](std::int64_t t) {
                return BatchFeeds(kInferStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            session_->Run(feeds, {reconstruction_});
            return 0.0f;
        });
        infer_step_ += steps;
        return result;
    }

    StepResult
    RunTraining(int steps) override
    {
        auto pipeline =
            MakePipeline("train", train_step_, [this](std::int64_t t) {
                return BatchFeeds(kTrainStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {loss_}, {train_op_});
            return out[0].scalar_value();
        });
        train_step_ += steps;
        return result;
    }

  private:
    static constexpr std::int64_t kHidden = 256;
    static constexpr std::int64_t kLatent = 32;

    /** Materializes stream batch @p index as a feed map (images only:
        the VAE is unsupervised). */
    data::FeedBatch
    BatchFeeds(std::int64_t index) const
    {
        const auto batch =
            dataset_->BatchAt(static_cast<std::uint64_t>(index), batch_);
        return {{inputs_.node, batch.images}};
    }

    std::int64_t batch_ = 16;
    std::unique_ptr<data::SyntheticMnistDataset> dataset_;
    nn::Trainables trainables_;
    Output inputs_, mu_, log_var_, z_, reconstruction_, loss_;
    Output mean_reconstruction_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

void
RegisterAutoenc()
{
    WorkloadRegistry::Global().Register("autoenc", [] {
        return std::make_unique<AutoencWorkload>();
    });
}

}  // namespace fathom::workloads
