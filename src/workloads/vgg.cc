/**
 * @file
 * vgg — Simonyan & Zisserman's 19-layer network (VGG-19).
 *
 * The defining property — sixteen 3x3 convolutional layers in five
 * blocks plus three fully-connected layers — is preserved exactly;
 * channel widths are divided by 8 and inputs are 32x32 so the five
 * pooling stages land on a 1x1 spatial output, mirroring the original
 * 224 -> 7 reduction at small scale.
 */
#include "data/synthetic_image.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

using graph::Output;

class VggWorkload : public Workload {
  public:
    std::string name() const override { return "vgg"; }
    std::string
    description() const override
    {
        return "Image classifier demonstrating the power of small "
               "convolutional filters. ILSVRC 2014 winner.";
    }
    std::string neuronal_style() const override { return "Convolutional, Full"; }
    int num_layers() const override { return 19; }
    std::string learning_task() const override { return "Supervised"; }
    std::string dataset() const override { return "synthetic-imagenet"; }

    void
    Setup(const WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 4;
        session_ = MakeSession(config);
        dataset_ = std::make_unique<data::SyntheticImageDataset>(
            kInput, 3, kClasses, config.seed ^ 0x1667);

        Rng init_rng(config.seed * 31 + 2);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "vgg");

        images_ = b.Placeholder("images");
        labels_ = b.Placeholder("labels");

        // VGG-19 conv configuration: blocks of (count, channels).
        const struct {
            int convs;
            std::int64_t channels;
        } blocks[] = {{2, 8}, {2, 16}, {4, 32}, {4, 64}, {4, 64}};

        Output x = images_;
        std::int64_t in_c = 3;
        int conv_index = 1;
        for (const auto& block : blocks) {
            for (int i = 0; i < block.convs; ++i) {
                x = nn::Conv2DLayer(b, &trainables_, init_rng,
                                    "conv" + std::to_string(conv_index++), x,
                                    3, in_c, block.channels, 1, "SAME");
                in_c = block.channels;
            }
            x = b.MaxPool(x, 2, 2, "SAME");
        }
        // 32 -> 16 -> 8 -> 4 -> 2 -> 1 spatial.
        const std::int64_t flat = in_c;
        const Output features = b.Reshape(x, {-1, flat});

        const auto fc1 =
            nn::MakeDense(b, &trainables_, init_rng, "fc1", flat, 64);
        const auto fc2 = nn::MakeDense(b, &trainables_, init_rng, "fc2", 64,
                                       64);
        const auto fc3 =
            nn::MakeDense(b, &trainables_, init_rng, "fc3", 64, kClasses);

        {
            graph::ScopeGuard head(b, "infer");
            Output h = nn::ApplyDense(b, fc1, features, nn::Activation::kRelu);
            h = nn::ApplyDense(b, fc2, h, nn::Activation::kRelu);
            logits_ = nn::ApplyDense(b, fc3, h);
            predictions_ = b.ArgMax(logits_);
        }
        {
            graph::ScopeGuard head(b, "train_head");
            Output h = nn::ApplyDense(b, fc1, features, nn::Activation::kRelu);
            h = nn::Dropout(b, h, 0.5f, /*training=*/true);
            h = nn::ApplyDense(b, fc2, h, nn::Activation::kRelu);
            h = nn::Dropout(b, h, 0.5f, /*training=*/true);
            const Output train_logits = nn::ApplyDense(b, fc3, h);
            loss_ = b.SoftmaxCrossEntropy(train_logits, labels_)[0];
        }
        train_op_ = nn::Minimize(b, loss_, trainables_,
                                 nn::OptimizerConfig::Momentum(0.01f, 0.9f));
    }


    bool has_accuracy_metric() const override { return true; }
    bool has_serving_endpoint() const override { return true; }

    serving::InferenceSignature
    ServingSignature() const override
    {
        serving::InferenceSignature sig;
        sig.inputs = {{PlaceholderName(*session_, images_), DType::kFloat32,
                       {kInput, kInput, 3}}};
        sig.fetches = {logits_, predictions_};
        sig.output_names = {"logits", "predictions"};
        return sig;
    }

    serving::RequestFeeds
    SampleServingRequest() override
    {
        const auto batch = dataset_->NextBatch(1);
        return {{PlaceholderName(*session_, images_), batch.images}};
    }

    float
    EvaluateAccuracy(int batches) override
    {
        auto pipeline =
            MakePipeline("eval", eval_step_, [this](std::int64_t t) {
                return BatchFeeds(kEvalStreamBase + t);
            });
        int correct = 0;
        int total = 0;
        for (int i = 0; i < batches; ++i) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {predictions_});
            const Tensor& labels = feeds.at(labels_.node);
            for (std::int64_t j = 0; j < batch_; ++j) {
                correct += out[0].data<std::int32_t>()[j] ==
                           labels.data<std::int32_t>()[j];
                ++total;
            }
        }
        eval_step_ += batches;
        return static_cast<float>(correct) / static_cast<float>(total);
    }

    StepResult
    RunInference(int steps) override
    {
        auto pipeline =
            MakePipeline("infer", infer_step_, [this](std::int64_t t) {
                return BatchFeeds(kInferStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            session_->Run(feeds, {predictions_});
            return 0.0f;
        });
        infer_step_ += steps;
        return result;
    }

    StepResult
    RunTraining(int steps) override
    {
        auto pipeline =
            MakePipeline("train", train_step_, [this](std::int64_t t) {
                return BatchFeeds(kTrainStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {loss_}, {train_op_});
            return out[0].scalar_value();
        });
        train_step_ += steps;
        return result;
    }

  private:
    /**
     * Materializes stream batch @p index as a full feed map. The label
     * feed is unused (pruned) on the inference path but carried anyway
     * so accuracy evaluation reads labels from the same batch the
     * predictions came from.
     */
    data::FeedBatch
    BatchFeeds(std::int64_t index) const
    {
        const auto batch =
            dataset_->BatchAt(static_cast<std::uint64_t>(index), batch_);
        return {{images_.node, batch.images}, {labels_.node, batch.labels}};
    }

    static constexpr std::int64_t kInput = 32;
    static constexpr std::int64_t kClasses = 16;

    std::int64_t batch_ = 4;
    std::unique_ptr<data::SyntheticImageDataset> dataset_;
    nn::Trainables trainables_;
    Output images_, labels_, logits_, predictions_, loss_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

void
RegisterVgg()
{
    WorkloadRegistry::Global().Register(
        "vgg", [] { return std::make_unique<VggWorkload>(); });
}

}  // namespace fathom::workloads
