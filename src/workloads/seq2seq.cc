/**
 * @file
 * seq2seq — Sutskever et al.'s sequence-to-sequence translation with
 * Bahdanau-style additive attention.
 *
 * A canonical recurrent encoder-decoder: a three-layer unrolled LSTM
 * encoder reads the source sentence into its state, and a three-layer
 * LSTM decoder emits the target with teacher forcing, attending over
 * the encoder outputs at every step. The parallel corpus is the
 * synthetic-WMT generator (target = permuted, reversed source).
 */
#include "data/synthetic_translation.h"
#include "nn/attention.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

using graph::Output;

class Seq2SeqWorkload : public Workload {
  public:
    std::string name() const override { return "seq2seq"; }
    std::string
    description() const override
    {
        return "Direct language-to-language sentence translation. "
               "State-of-the-art accuracy with a simple, language-agnostic "
               "architecture.";
    }
    std::string neuronal_style() const override { return "Recurrent"; }
    int num_layers() const override { return 7; }
    std::string learning_task() const override { return "Supervised"; }
    std::string dataset() const override { return "synthetic-wmt"; }

    void
    Setup(const WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 4;
        session_ = MakeSession(config);
        dataset_ = std::make_unique<data::SyntheticTranslationDataset>(
            kVocab, kSrcLen, config.seed ^ 0x5E25E2);

        Rng init_rng(config.seed * 31 + 7);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "seq2seq");

        source_ = b.Placeholder("source");            // int32 [B, S]
        decoder_inputs_ = b.Placeholder("dec_in");    // int32 [B, T-1]
        decoder_targets_ = b.Placeholder("dec_tgt");  // int32 [(T-1)*B]

        // Shared source/target embedding table.
        const Output embedding_table = trainables_.NewVariable(
            b, "embedding",
            nn::GlorotUniform(init_rng, Shape{kVocab, kEmbed}, kVocab,
                              kEmbed));

        // ---- encoder -------------------------------------------------------
        std::vector<nn::LstmCell> enc_cells;
        enc_cells.emplace_back(b, &trainables_, init_rng, "enc_l0", kEmbed,
                               kHidden);
        enc_cells.emplace_back(b, &trainables_, init_rng, "enc_l1", kHidden,
                               kHidden);
        enc_cells.emplace_back(b, &trainables_, init_rng, "enc_l2", kHidden,
                               kHidden);

        std::vector<Output> enc_inputs;
        for (std::int64_t t = 0; t < kSrcLen; ++t) {
            const Output token = b.Reshape(
                b.Slice(source_, {0, t}, {-1, 1}), {-1});
            enc_inputs.push_back(b.Gather(embedding_table, token));
        }
        auto encoded = nn::RunLstmStack(b, enc_cells, enc_inputs, batch_);

        // ---- attention + decoder -------------------------------------------
        nn::AdditiveAttention attention(b, &trainables_, init_rng, "attn",
                                        kHidden, kHidden, kAttn);

        std::vector<nn::LstmCell> dec_cells;
        dec_cells.emplace_back(b, &trainables_, init_rng, "dec_l0",
                               kEmbed + kHidden, kHidden);
        dec_cells.emplace_back(b, &trainables_, init_rng, "dec_l1", kHidden,
                               kHidden);
        dec_cells.emplace_back(b, &trainables_, init_rng, "dec_l2", kHidden,
                               kHidden);
        const auto proj = nn::MakeDense(b, &trainables_, init_rng, "proj",
                                        kHidden, kVocab);

        // Decoder initialized from the encoder's final states (the
        // "thought vector"), teacher-forced over T-1 steps.
        std::vector<nn::LstmState> state = encoded.final_states;
        std::vector<Output> step_logits;
        for (std::int64_t t = 0; t < kTgtLen - 1; ++t) {
            const Output token = b.Reshape(
                b.Slice(decoder_inputs_, {0, t}, {-1, 1}), {-1});
            const Output embedded = b.Gather(embedding_table, token);
            const Output context = attention.Context(
                b, encoded.outputs, state.back().h, batch_);
            Output layer_in = b.Concat({embedded, context}, 1);
            for (std::size_t layer = 0; layer < dec_cells.size(); ++layer) {
                state[layer] = dec_cells[layer].Step(b, layer_in,
                                                     state[layer]);
                layer_in = state[layer].h;
            }
            step_logits.push_back(nn::ApplyDense(b, proj, layer_in));
        }

        // Step-major stacked logits: [(T-1)*B, V].
        logits_ = b.Concat(step_logits, 0);
        // Batch-major restack for serving: [B, (T-1)*V]. The dynamic
        // batcher scatters outputs by leading-dimension row, which the
        // step-major training layout cannot support.
        serving_logits_ = b.Concat(step_logits, 1);
        const auto xent = b.SoftmaxCrossEntropy(logits_, decoder_targets_);
        loss_ = xent[0];
        // Plain SGD with gradient clipping, as in the original
        // (Sutskever et al. clipped gradients to stabilize the
        // unrolled LSTM stack).
        auto optimizer = nn::OptimizerConfig::Sgd(0.2f);
        optimizer.clip_value = 1.0f;
        train_op_ = nn::Minimize(b, loss_, trainables_, optimizer);
    }

    bool has_serving_endpoint() const override { return true; }

    serving::InferenceSignature
    ServingSignature() const override
    {
        // The unrolled LSTM stack and attention bake batch_ into the
        // graph (initial states, Tile widths), so the plan executes at
        // exactly that batch; the batcher pads shorter batches.
        serving::InferenceSignature sig;
        sig.inputs = {{PlaceholderName(*session_, source_), DType::kInt32,
                       {kSrcLen}},
                      {PlaceholderName(*session_, decoder_inputs_),
                       DType::kInt32,
                       {kTgtLen - 1}}};
        sig.fetches = {serving_logits_};
        sig.output_names = {"logits"};
        sig.fixed_batch = batch_;
        return sig;
    }

    serving::RequestFeeds
    SampleServingRequest() override
    {
        const auto batch = dataset_->NextBatch(1);
        Tensor dec_in(DType::kInt32, Shape{1, kTgtLen - 1});
        const std::int32_t* tgt = batch.target.data<std::int32_t>();
        for (std::int64_t t = 0; t < kTgtLen - 1; ++t) {
            dec_in.data<std::int32_t>()[t] = tgt[t];
        }
        return {{PlaceholderName(*session_, source_), batch.source},
                {PlaceholderName(*session_, decoder_inputs_), dec_in}};
    }

    StepResult
    RunInference(int steps) override
    {
        auto pipeline =
            MakePipeline("infer", infer_step_, [this](std::int64_t t) {
                return BatchFeeds(kInferStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            session_->Run(feeds, {logits_});
            return 0.0f;
        });
        infer_step_ += steps;
        return result;
    }

    StepResult
    RunTraining(int steps) override
    {
        auto pipeline =
            MakePipeline("train", train_step_, [this](std::int64_t t) {
                return BatchFeeds(kTrainStreamBase + t);
            });
        auto result = TimeSteps(steps, [&](int) {
            const runtime::FeedMap feeds = pipeline->Next();
            const auto out = session_->Run(feeds, {loss_}, {train_op_});
            return out[0].scalar_value();
        });
        train_step_ += steps;
        return result;
    }

  private:
    /**
     * Materializes stream batch @p index as a full feed map: source
     * tokens, teacher-forced decoder inputs (target[:, :-1]), and
     * step-major targets. The target feed is unused (pruned) on the
     * inference path.
     */
    data::FeedBatch
    BatchFeeds(std::int64_t index) const
    {
        const auto batch =
            dataset_->BatchAt(static_cast<std::uint64_t>(index), batch_);

        Tensor dec_in(DType::kInt32, Shape{batch_, kTgtLen - 1});
        Tensor dec_tgt(DType::kInt32, Shape{(kTgtLen - 1) * batch_});
        const std::int32_t* tgt = batch.target.data<std::int32_t>();
        for (std::int64_t i = 0; i < batch_; ++i) {
            for (std::int64_t t = 0; t < kTgtLen - 1; ++t) {
                dec_in.data<std::int32_t>()[i * (kTgtLen - 1) + t] =
                    tgt[i * kTgtLen + t];
                // Step-major target layout matches the logits concat.
                dec_tgt.data<std::int32_t>()[t * batch_ + i] =
                    tgt[i * kTgtLen + t + 1];
            }
        }
        return {{source_.node, batch.source},
                {decoder_inputs_.node, dec_in},
                {decoder_targets_.node, dec_tgt}};
    }

    static constexpr std::int64_t kVocab = 128;
    static constexpr std::int64_t kEmbed = 16;
    static constexpr std::int64_t kHidden = 32;
    static constexpr std::int64_t kAttn = 16;
    static constexpr std::int64_t kSrcLen = 12;
    static constexpr std::int64_t kTgtLen = kSrcLen + 2;

    std::int64_t batch_ = 4;
    std::unique_ptr<data::SyntheticTranslationDataset> dataset_;
    nn::Trainables trainables_;
    Output source_, decoder_inputs_, decoder_targets_, logits_, loss_;
    Output serving_logits_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

void
RegisterSeq2Seq()
{
    WorkloadRegistry::Global().Register("seq2seq", [] {
        return std::make_unique<Seq2SeqWorkload>();
    });
}

}  // namespace fathom::workloads
