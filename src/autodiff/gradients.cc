#include "autodiff/gradients.h"

#include <stdexcept>
#include <unordered_map>

namespace fathom::autodiff {

using graph::GraphBuilder;
using graph::Node;
using graph::NodeId;
using graph::Output;

GradientRegistry&
GradientRegistry::Global()
{
    static GradientRegistry registry;
    return registry;
}

void
GradientRegistry::Register(const std::string& op_type, GradFn fn)
{
    if (fns_.count(op_type)) {
        throw std::logic_error("GradientRegistry: duplicate gradient for '" +
                               op_type + "'");
    }
    fns_[op_type] = std::move(fn);
}

const GradFn*
GradientRegistry::Lookup(const std::string& op_type) const
{
    auto it = fns_.find(op_type);
    return it == fns_.end() ? nullptr : &it->second;
}

namespace {

/** Key for one (node, output-index) edge. */
struct EdgeKey {
    NodeId node;
    int index;
    bool operator==(const EdgeKey& o) const
    {
        return node == o.node && index == o.index;
    }
};

struct EdgeKeyHash {
    std::size_t
    operator()(const EdgeKey& k) const
    {
        return std::hash<std::int64_t>()(
            (static_cast<std::int64_t>(k.node) << 8) ^ k.index);
    }
};

}  // namespace

std::vector<Output>
BuildGradients(GraphBuilder& builder, Output loss,
               const std::vector<Output>& wrt)
{
    graph::Graph& g = builder.graph();
    const auto topo = g.TopologicalOrder({loss.node});

    std::unordered_map<EdgeKey, std::vector<Output>, EdgeKeyHash> accum;

    graph::ScopeGuard scope(builder, "gradients");
    accum[{loss.node, loss.index}].push_back(
        builder.ScalarConst(1.0f, "grad_seed"));

    const GradientRegistry& registry = GradientRegistry::Global();

    // Sweep the forward subgraph in reverse topological order,
    // propagating accumulated output gradients through each op's
    // registered gradient function.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const Node& node = g.node(*it);

        bool any_grad = false;
        std::vector<Output> grad_outputs(
            static_cast<std::size_t>(node.num_outputs), Output{-1, 0});
        for (int out = 0; out < node.num_outputs; ++out) {
            auto found = accum.find({node.id, out});
            if (found != accum.end() && !found->second.empty()) {
                grad_outputs[static_cast<std::size_t>(out)] =
                    builder.AddN(found->second);
                any_grad = true;
            }
        }
        if (!any_grad || node.inputs.empty()) {
            continue;
        }

        const GradFn* fn = registry.Lookup(node.op_type);
        if (fn == nullptr) {
            throw std::logic_error(
                "BuildGradients: gradient flows into op '" + node.op_type +
                "' (node '" + node.name + "') which has no gradient function");
        }
        const auto input_grads = (*fn)(builder, node, grad_outputs);
        if (input_grads.size() != node.inputs.size()) {
            throw std::logic_error("BuildGradients: gradient for '" +
                                   node.op_type + "' returned " +
                                   std::to_string(input_grads.size()) +
                                   " grads for " +
                                   std::to_string(node.inputs.size()) +
                                   " inputs");
        }
        for (std::size_t i = 0; i < input_grads.size(); ++i) {
            if (input_grads[i].has_value()) {
                const Output& in = node.inputs[i];
                accum[{in.node, in.index}].push_back(*input_grads[i]);
            }
        }
    }

    std::vector<Output> result;
    result.reserve(wrt.size());
    for (const Output& target : wrt) {
        auto found = accum.find({target.node, target.index});
        if (found != accum.end() && !found->second.empty()) {
            result.push_back(builder.AddN(found->second));
        } else {
            // Disconnected target: gradient is identically zero.
            result.push_back(
                builder.AddOp("zeros_like", "ZerosLike", {target}));
        }
    }
    return result;
}

}  // namespace fathom::autodiff
