/**
 * @file
 * Reverse-mode automatic differentiation over the dataflow graph.
 *
 * Mirrors TensorFlow's symbolic auto-differentiation (paper Sec. V-A):
 * each differentiable op registers a gradient function that, given the
 * gradients flowing into the op's outputs, emits new graph nodes
 * computing the gradients for its inputs. Training graphs are thus
 * ordinary op graphs, and backward-phase operations show up in profiles
 * exactly as the paper describes (e.g. Conv2DBackpropFilter).
 */
#ifndef FATHOM_AUTODIFF_GRADIENTS_H
#define FATHOM_AUTODIFF_GRADIENTS_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph_builder.h"

namespace fathom::autodiff {

/**
 * Emits gradient subgraphs for one op type.
 *
 * @param builder      builder over the graph being extended.
 * @param node         the forward node being differentiated.
 * @param grad_outputs one edge per forward output; an Output with
 *                     node == -1 means "no gradient flows into this
 *                     output" (treat as zero).
 * @return one entry per forward *input*: the gradient edge, or
 *         std::nullopt for non-differentiable inputs (e.g. indices).
 */
using GradFn = std::function<std::vector<std::optional<graph::Output>>(
    graph::GraphBuilder&, const graph::Node&,
    const std::vector<graph::Output>&)>;

/** Registry of gradient functions, keyed by op type name. */
class GradientRegistry {
  public:
    static GradientRegistry& Global();

    /** Registers a gradient fn; throws std::logic_error on duplicates. */
    void Register(const std::string& op_type, GradFn fn);

    /** @return the gradient fn or nullptr if the op is non-differentiable. */
    const GradFn* Lookup(const std::string& op_type) const;

  private:
    std::map<std::string, GradFn> fns_;
};

/**
 * Builds the gradient of scalar @p loss with respect to each edge in
 * @p wrt, appending backward nodes to the builder's graph.
 *
 * @return one gradient edge per @p wrt entry. Entries not connected to
 *         the loss get a zero-filled constant of unknown shape resolved
 *         at run time (emitted as "ZerosLike" of the wrt edge).
 * @throws std::logic_error if a needed op has no registered gradient.
 */
std::vector<graph::Output> BuildGradients(graph::GraphBuilder& builder,
                                          graph::Output loss,
                                          const std::vector<graph::Output>& wrt);

}  // namespace fathom::autodiff

#endif  // FATHOM_AUTODIFF_GRADIENTS_H
