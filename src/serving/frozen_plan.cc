#include "serving/frozen_plan.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "graph/verify/verifier.h"

namespace fathom::serving {

namespace {

/** Untyped byte view of a tensor's buffer (dtype-dispatched). */
char*
RawBytes(Tensor& t)
{
    return t.dtype() == DType::kFloat32
               ? reinterpret_cast<char*>(t.data<float>())
               : reinterpret_cast<char*>(t.data<std::int32_t>());
}

const char*
RawBytes(const Tensor& t)
{
    return t.dtype() == DType::kFloat32
               ? reinterpret_cast<const char*>(t.data<float>())
               : reinterpret_cast<const char*>(t.data<std::int32_t>());
}

Shape
BatchedShape(std::int64_t batch, const std::vector<std::int64_t>& example)
{
    std::vector<std::int64_t> dims;
    dims.reserve(example.size() + 1);
    dims.push_back(batch);
    dims.insert(dims.end(), example.begin(), example.end());
    return Shape(std::move(dims));
}

}  // namespace

std::shared_ptr<const FrozenPlan>
FrozenPlan::Freeze(const runtime::Session& session,
                   const InferenceSignature& signature,
                   const FrozenPlanOptions& options)
{
    if (signature.fetches.empty()) {
        throw std::invalid_argument("FrozenPlan::Freeze: no fetches");
    }
    if (signature.output_names.size() != signature.fetches.size()) {
        throw std::invalid_argument(
            "FrozenPlan::Freeze: output_names/fetches size mismatch");
    }

    // shared_ptr with private ctor: wrap manually.
    std::shared_ptr<FrozenPlan> plan(new FrozenPlan());
    plan->signature_ = signature;
    plan->inter_op_threads_ = std::max(options.inter_op_threads, 1);
    plan->intra_pool_ = std::make_unique<parallel::ThreadPool>(
        std::max(options.intra_op_threads, 1));
    if (plan->inter_op_threads_ > 1) {
        plan->inter_pool_ = std::make_unique<parallel::ThreadPool>(
            plan->inter_op_threads_);
    }

    const graph::Graph& src = session.graph();
    std::vector<graph::NodeId> roots;
    roots.reserve(signature.fetches.size());
    for (const graph::Output& f : signature.fetches) {
        roots.push_back(f.node);
    }
    const std::vector<graph::NodeId> order = src.TopologicalOrder(roots);

    std::unordered_map<std::string, const TensorSpec*> declared;
    for (const TensorSpec& spec : signature.inputs) {
        declared[spec.name] = &spec;
    }

    // Copy the reachable subgraph, in topological order so every
    // remapped input already exists, snapshotting state as we go.
    // Variable values are deep-copied (the source session's in-place
    // optimizer updates must never reach a frozen plan); Consts are
    // immutable and share the buffer.
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    graph::VariableStore snapshot;
    std::unordered_map<graph::NodeId, graph::NodeId> remap;
    remap.reserve(order.size());
    for (graph::NodeId id : order) {
        const graph::Node& node = src.node(id);
        std::vector<graph::Output> inputs;
        inputs.reserve(node.inputs.size());
        for (const graph::Output& in : node.inputs) {
            inputs.push_back({remap.at(in.node), in.index});
        }
        const graph::NodeId frozen = plan->graph_.AddNode(
            node.name, node.op_type, std::move(inputs), node.attrs,
            node.num_outputs);
        remap[id] = frozen;
        for (graph::NodeId c : node.control_inputs) {
            plan->graph_.AddControlEdge(remap.at(c), frozen);
        }

        if (node.op_type == "Placeholder") {
            if (declared.find(node.name) == declared.end()) {
                throw std::invalid_argument(
                    "FrozenPlan::Freeze: reachable placeholder '" +
                    node.name + "' not declared in the signature");
            }
            plan->input_nodes_[node.name] = frozen;
        } else if (node.op_type == "Variable") {
            const std::string& var = node.attr("var_name").AsString();
            if (!snapshot.Contains(var)) {
                snapshot.Set(var, session.variables().Get(var).Clone());
            }
        } else if (node.op_type == "Const") {
            const std::string& var = node.attr("var_name").AsString();
            if (!snapshot.Contains(var)) {
                snapshot.Set(var, session.variables().Get(var));
            }
        } else {
            const graph::OpDef& def = registry.Lookup(node.op_type);
            if (def.stateful) {
                throw std::invalid_argument(
                    "FrozenPlan::Freeze: inference subgraph contains "
                    "stateful op '" +
                    node.name + "' (" + node.op_type +
                    "); freeze a deterministic serving head instead");
            }
        }
    }

    for (const TensorSpec& spec : signature.inputs) {
        if (plan->input_nodes_.find(spec.name) == plan->input_nodes_.end()) {
            throw std::invalid_argument(
                "FrozenPlan::Freeze: declared input '" + spec.name +
                "' is not a placeholder of the inference subgraph");
        }
    }

    plan->fetches_.reserve(signature.fetches.size());
    for (const graph::Output& f : signature.fetches) {
        plan->fetches_.push_back({remap.at(f.node), f.index});
    }

    // Optional rewrite over the private copy. Weights are a frozen
    // snapshot here, so Variables fold exactly like Consts
    // (variables_as_constants): whole weight-only expressions are
    // evaluated once at freeze time instead of per request.
    std::vector<graph::NodeId> frozen_order;
    std::vector<char> inplace_by_order;
    if (options.optimize) {
        graph::rewrite::RewriteOptions ropts = options.rewrites;
        ropts.variables_as_constants = true;
        // The freeze-time verification below is stronger (TensorSpec
        // seeds, frozen-mode lint); skip the rewriter's own.
        ropts.verify = ropts.verify && !options.verify;
        auto rewritten = graph::rewrite::Rewrite(
            plan->graph_, plan->fetches_, /*targets=*/{}, snapshot, ropts);
        frozen_order = std::move(rewritten.order);
        inplace_by_order = std::move(rewritten.inplace);
        plan->replacements_ = std::move(rewritten.replacements);
        plan->folded_ = std::move(rewritten.folded);
    } else {
        // The copy appended nodes in topological order, so ids
        // 0..n-1 ARE the execution order.
        frozen_order.resize(static_cast<std::size_t>(plan->graph_.num_nodes()));
        for (std::size_t i = 0; i < frozen_order.size(); ++i) {
            frozen_order[i] = static_cast<graph::NodeId>(i);
        }
        inplace_by_order.assign(frozen_order.size(), 0);
    }

    // Edge resolution through the (path-compressed) replacement map.
    auto resolve = [&plan](graph::NodeId id) {
        auto it = plan->replacements_.find(id);
        return it == plan->replacements_.end() ? id : it->second;
    };

    // Build the executable steps from the final order. Placeholders
    // are fed; surviving Variable/Const reads (folding off, or a
    // pattern subset) bind their snapshot value; folded nodes carry
    // their freeze-time value and need no step at all.
    for (std::size_t oi = 0; oi < frozen_order.size(); ++oi) {
        const graph::NodeId fid = frozen_order[oi];
        if (plan->folded_.count(fid)) {
            continue;
        }
        const graph::Node& node = plan->graph_.node(fid);
        if (node.op_type == "Placeholder") {
            continue;
        }
        if (node.op_type == "Variable" || node.op_type == "Const") {
            plan->prebound_.emplace_back(
                fid, snapshot.Get(node.attr("var_name").AsString()));
            continue;
        }
        Step step;
        step.node = fid;
        step.def = &registry.Lookup(node.op_type);
        step.seq = static_cast<std::int32_t>(plan->steps_.size());
        plan->steps_.push_back(step);
        plan->step_inplace_.push_back(inplace_by_order[oi]);
    }

    for (graph::Output& f : plan->fetches_) {
        f.node = resolve(f.node);
    }

    // Static verification of the frozen executable: every request will
    // run this exact plan, so prove it once here. Placeholder types are
    // seeded from the declared TensorSpecs with the serving batch
    // prepended (fixed_batch when the graph bakes one in, else 1 — any
    // larger batch only scales the leading dim, which no shape fn
    // constrains against the graph's weights).
    if (options.verify) {
        graph::verify::VerifyOptions vopts;
        vopts.variables = &snapshot;
        vopts.frozen = true;
        vopts.check_liveness = false;  // facts index steps, not order.
        const std::int64_t batch =
            signature.fixed_batch > 0 ? signature.fixed_batch : 1;
        for (const TensorSpec& spec : signature.inputs) {
            vopts.feed_types[plan->input_nodes_.at(spec.name)] =
                graph::verify::TypeInfo::Of(
                    spec.dtype, BatchedShape(batch, spec.example_dims));
        }
        graph::verify::PlanFacts facts;
        facts.order = &frozen_order;
        facts.replacements = &plan->replacements_;
        facts.folded = &plan->folded_;
        facts.inplace =
            inplace_by_order.empty() ? nullptr : &inplace_by_order;
        graph::verify::VerifyOrThrow(plan->graph_, plan->fetches_,
                                     /*targets=*/{}, vopts, &facts);
    }

    // Dependency + liveness structure over executable steps only
    // (placeholder and prebound values exist before execution starts,
    // so edges from them impose no ordering and hold no credit).
    const std::size_t n = plan->steps_.size();
    std::unordered_map<graph::NodeId, std::int32_t> step_of;
    step_of.reserve(n);
    for (const Step& s : plan->steps_) {
        step_of[s.node] = s.seq;
    }
    std::unordered_set<graph::NodeId> fetched;
    for (const graph::Output& f : plan->fetches_) {
        fetched.insert(f.node);
    }
    plan->dependents_.assign(n, {});
    plan->initial_pending_.assign(n, 0);
    plan->input_producers_.assign(n, {});
    plan->consumer_count_.assign(n, 0);
    plan->releasable_.assign(n, 0);
    std::vector<std::int32_t> deps;
    for (std::size_t i = 0; i < n; ++i) {
        const graph::Node& node = plan->graph_.node(plan->steps_[i].node);
        plan->releasable_[i] = fetched.count(plan->steps_[i].node) == 0;
        deps.clear();
        auto& producers = plan->input_producers_[i];
        for (const graph::Output& in : node.inputs) {
            auto p = step_of.find(resolve(in.node));
            if (p != step_of.end()) {
                deps.push_back(p->second);
                producers.push_back(p->second);
            }
        }
        for (graph::NodeId c : node.control_inputs) {
            auto p = step_of.find(resolve(c));
            if (p != step_of.end()) {
                deps.push_back(p->second);
            }
        }
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        plan->initial_pending_[i] = static_cast<std::int32_t>(deps.size());
        for (std::int32_t d : deps) {
            plan->dependents_[static_cast<std::size_t>(d)].push_back(
                static_cast<std::int32_t>(i));
        }
        std::sort(producers.begin(), producers.end());
        producers.erase(std::unique(producers.begin(), producers.end()),
                        producers.end());
        for (std::int32_t p : producers) {
            ++plan->consumer_count_[static_cast<std::size_t>(p)];
        }
    }

    return plan;
}

void
FrozenPlan::CheckFeed(const TensorSpec& spec, const Tensor& value,
                      std::int64_t batch) const
{
    if (!value.initialized()) {
        throw std::invalid_argument("FrozenPlan: input '" + spec.name +
                                    "' is empty");
    }
    if (value.dtype() != spec.dtype) {
        throw std::invalid_argument(
            "FrozenPlan: input '" + spec.name + "' dtype " +
            DTypeName(value.dtype()) + " != declared " +
            DTypeName(spec.dtype));
    }
    const auto& dims = value.shape().dims();
    bool ok = dims.size() == spec.example_dims.size() + 1 &&
              dims[0] == batch;
    for (std::size_t d = 0; ok && d < spec.example_dims.size(); ++d) {
        ok = dims[d + 1] == spec.example_dims[d];
    }
    if (!ok) {
        throw std::invalid_argument(
            "FrozenPlan: input '" + spec.name + "' has shape " +
            value.DebugString() + ", expected batch " +
            std::to_string(batch) + " x declared example shape");
    }
}

void
FrozenPlan::RunStep(std::size_t seq,
                    std::vector<std::vector<Tensor>>& values) const
{
    const Step& step = steps_[seq];
    const graph::Node& node = graph_.node(step.node);

    std::vector<Tensor> inputs;
    inputs.reserve(node.inputs.size());
    for (const graph::Output& in : node.inputs) {
        auto rep = replacements_.find(in.node);
        const graph::NodeId source =
            rep == replacements_.end() ? in.node : rep->second;
        const auto& produced = values[static_cast<std::size_t>(source)];
        if (static_cast<std::size_t>(in.index) >= produced.size() ||
            !produced[static_cast<std::size_t>(in.index)].initialized()) {
            throw std::logic_error("FrozenPlan: node '" + node.name +
                                   "' input from '" +
                                   graph_.node(source).name +
                                   "' was not produced");
        }
        inputs.push_back(produced[static_cast<std::size_t>(in.index)]);
    }

    graph::OpContext ctx(node, &inputs, *intra_pool_, rng_,
                         empty_variables_);
    // In-place grant: the rewrite proved input 0 dies here; the
    // use_count gate proves no other run, fold, prebound value, or
    // view still holds the buffer (values slot + our gathered copy).
    if (step_inplace_[seq] && !inputs.empty() && inputs[0].initialized() &&
        inputs[0].buffer_use_count() == 2) {
        ctx.set_may_alias_input(true);
    }
    try {
        step.def->kernel(ctx);
    } catch (const std::exception& e) {
        throw std::runtime_error("FrozenPlan: op '" + node.name + "' (" +
                                 node.op_type + ") failed: " + e.what());
    }
    values[static_cast<std::size_t>(step.node)] = std::move(ctx.outputs());
}

void
FrozenPlan::ReleaseDead(std::size_t seq,
                        std::atomic<std::int32_t>* remaining,
                        std::vector<std::vector<Tensor>>& values) const
{
    // A step nothing reads dies on completion (there are no run-only
    // targets in a frozen plan, but Group-style fan-ins fetch nothing).
    if (releasable_[seq] && consumer_count_[seq] == 0) {
        values[static_cast<std::size_t>(steps_[seq].node)].clear();
    }
    for (std::int32_t p : input_producers_[seq]) {
        const auto ps = static_cast<std::size_t>(p);
        // acq_rel: the consumer that takes the count to zero observes
        // all other consumers' reads complete (see session.cc).
        if (remaining[ps].fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            releasable_[ps]) {
            values[static_cast<std::size_t>(steps_[ps].node)].clear();
        }
    }
}

void
FrozenPlan::RunParallel(std::vector<std::vector<Tensor>>& values,
                        std::atomic<std::int32_t>* remaining) const
{
    const std::size_t total = steps_.size();

    struct ExecState {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<std::int32_t> ready;
        std::vector<std::int32_t> pending;
        std::size_t active = 0;
        std::size_t completed = 0;
        bool stopped = false;
        std::size_t error_seq = SIZE_MAX;
        std::exception_ptr error;
    };
    ExecState state;
    state.pending = initial_pending_;
    for (std::size_t i = 0; i < total; ++i) {
        if (state.pending[i] == 0) {
            state.ready.push_back(static_cast<std::int32_t>(i));
        }
    }

    // Same drain-loop shape as Session::RunParallel, with no barriers
    // (stateful ops were rejected at freeze time): lanes claim ready
    // steps until the plan completes or an error stops the schedule;
    // among concurrently failing steps the lowest sequence wins, so
    // the surfaced error is deterministic.
    auto drain = [this, &values, &state, remaining, total] {
        for (;;) {
            std::int32_t seq = -1;
            {
                std::unique_lock<std::mutex> lock(state.mu);
                state.cv.wait(lock, [&state, total] {
                    return state.stopped || !state.ready.empty() ||
                           (state.active == 0 && state.completed == total);
                });
                if (state.stopped || state.ready.empty()) {
                    return;
                }
                seq = state.ready.front();
                state.ready.pop_front();
                ++state.active;
            }
            std::exception_ptr err;
            try {
                RunStep(static_cast<std::size_t>(seq), values);
            } catch (...) {
                err = std::current_exception();
            }
            if (!err) {
                ReleaseDead(static_cast<std::size_t>(seq), remaining,
                            values);
            }
            {
                std::lock_guard<std::mutex> lock(state.mu);
                --state.active;
                ++state.completed;
                if (err) {
                    state.stopped = true;
                    if (static_cast<std::size_t>(seq) < state.error_seq) {
                        state.error_seq = static_cast<std::size_t>(seq);
                        state.error = err;
                    }
                } else if (!state.stopped) {
                    for (std::int32_t d :
                         dependents_[static_cast<std::size_t>(seq)]) {
                        if (--state.pending[static_cast<std::size_t>(d)] ==
                            0) {
                            state.ready.push_back(d);
                        }
                    }
                }
            }
            state.cv.notify_all();
        }
    };

    const std::size_t width = std::min(
        static_cast<std::size_t>(inter_op_threads_), total);
    std::vector<std::function<void()>> loops;
    loops.reserve(width);
    for (std::size_t lane = 0; lane < width; ++lane) {
        loops.push_back(drain);
    }
    inter_pool_->RunTasks(std::move(loops));

    if (state.error) {
        std::rethrow_exception(state.error);
    }
}

std::vector<Tensor>
FrozenPlan::Run(const std::map<std::string, Tensor>& feeds) const
{
    // Resolve the batch from the first declared input and validate
    // every feed against it (and against the plan's fixed batch).
    if (signature_.inputs.empty()) {
        throw std::logic_error("FrozenPlan::Run: plan declares no inputs");
    }
    auto first = feeds.find(signature_.inputs.front().name);
    if (first == feeds.end() || !first->second.initialized() ||
        first->second.shape().rank() == 0) {
        throw std::invalid_argument("FrozenPlan::Run: missing input '" +
                                    signature_.inputs.front().name + "'");
    }
    const std::int64_t batch = first->second.shape().dims()[0];
    if (signature_.fixed_batch > 0 && batch != signature_.fixed_batch) {
        throw std::invalid_argument(
            "FrozenPlan::Run: plan was frozen at fixed batch " +
            std::to_string(signature_.fixed_batch) + ", got " +
            std::to_string(batch));
    }

    std::vector<std::vector<Tensor>> values(
        static_cast<std::size_t>(graph_.num_nodes()));
    for (const auto& [id, value] : prebound_) {
        values[static_cast<std::size_t>(id)] = {value};
    }
    for (const auto& [id, outputs] : folded_) {
        values[static_cast<std::size_t>(id)] = outputs;
    }
    for (const TensorSpec& spec : signature_.inputs) {
        auto fed = feeds.find(spec.name);
        if (fed == feeds.end()) {
            throw std::invalid_argument("FrozenPlan::Run: missing input '" +
                                        spec.name + "'");
        }
        CheckFeed(spec, fed->second, batch);
        values[static_cast<std::size_t>(input_nodes_.at(spec.name))] = {
            fed->second};
    }

    // Per-run liveness credits: intermediates die at their last
    // consumer and their buffers recycle through the pool, which is
    // what keeps steady-state serving allocation-free.
    auto remaining =
        std::make_unique<std::atomic<std::int32_t>[]>(steps_.size());
    for (std::size_t i = 0; i < steps_.size(); ++i) {
        remaining[i].store(consumer_count_[i], std::memory_order_relaxed);
    }

    if (inter_op_threads_ > 1 && steps_.size() > 1) {
        RunParallel(values, remaining.get());
    } else {
        for (std::size_t seq = 0; seq < steps_.size(); ++seq) {
            RunStep(seq, values);
            ReleaseDead(seq, remaining.get(), values);
        }
    }

    std::vector<Tensor> results;
    results.reserve(fetches_.size());
    for (const graph::Output& f : fetches_) {
        const auto& produced = values[static_cast<std::size_t>(f.node)];
        if (static_cast<std::size_t>(f.index) >= produced.size() ||
            !produced[static_cast<std::size_t>(f.index)].initialized()) {
            throw std::logic_error("FrozenPlan::Run: fetch of '" +
                                   graph_.node(f.node).name +
                                   "' produced no value");
        }
        results.push_back(produced[static_cast<std::size_t>(f.index)]);
    }
    return results;
}

std::vector<std::vector<Tensor>>
FrozenPlan::ServeBatch(const std::vector<const RequestFeeds*>& requests) const
{
    const std::int64_t n = static_cast<std::int64_t>(requests.size());
    if (n == 0) {
        return {};
    }
    const std::int64_t padded =
        signature_.fixed_batch > 0 ? signature_.fixed_batch : n;
    if (n > padded) {
        throw std::invalid_argument(
            "FrozenPlan::ServeBatch: " + std::to_string(n) +
            " requests exceed the fixed plan batch " +
            std::to_string(padded));
    }

    // Gather: stack each input along a fresh batch dimension; padding
    // rows replicate the first request (row independence makes their
    // content irrelevant to real rows; replication keeps them inside
    // every kernel's well-conditioned input range).
    std::map<std::string, Tensor> feeds;
    for (const TensorSpec& spec : signature_.inputs) {
        Tensor batched(spec.dtype, BatchedShape(padded, spec.example_dims));
        const std::size_t row_bytes =
            batched.byte_size() / static_cast<std::size_t>(padded);
        char* dst = RawBytes(batched);
        for (std::int64_t i = 0; i < padded; ++i) {
            const RequestFeeds& request =
                *requests[static_cast<std::size_t>(std::min(i, n - 1))];
            auto it = request.find(spec.name);
            if (it == request.end()) {
                throw std::invalid_argument(
                    "FrozenPlan::ServeBatch: request missing input '" +
                    spec.name + "'");
            }
            CheckFeed(spec, it->second, /*batch=*/1);
            std::memcpy(dst + static_cast<std::size_t>(i) * row_bytes,
                        RawBytes(it->second), row_bytes);
        }
        feeds.emplace(spec.name, std::move(batched));
    }

    const std::vector<Tensor> batched_outputs = Run(feeds);

    // Scatter: slice row i of every batch-major output back to
    // request i; padding rows are dropped.
    std::vector<std::vector<Tensor>> per_request(
        static_cast<std::size_t>(n));
    for (auto& outputs : per_request) {
        outputs.reserve(batched_outputs.size());
    }
    for (std::size_t f = 0; f < batched_outputs.size(); ++f) {
        const Tensor& out = batched_outputs[f];
        const auto& dims = out.shape().dims();
        if (dims.empty() || dims[0] != padded) {
            throw std::logic_error(
                "FrozenPlan::ServeBatch: output '" +
                signature_.output_names[f] +
                "' is not batch-major (shape " + out.DebugString() +
                ", batch " + std::to_string(padded) + ")");
        }
        std::vector<std::int64_t> row_dims(dims.begin(), dims.end());
        row_dims[0] = 1;
        const std::size_t row_bytes =
            out.byte_size() / static_cast<std::size_t>(padded);
        const char* src = RawBytes(out);
        for (std::int64_t i = 0; i < n; ++i) {
            Tensor row(out.dtype(), Shape(row_dims));
            std::memcpy(RawBytes(row),
                        src + static_cast<std::size_t>(i) * row_bytes,
                        row_bytes);
            per_request[static_cast<std::size_t>(i)].push_back(
                std::move(row));
        }
    }
    return per_request;
}

std::vector<Tensor>
FrozenPlan::ServeOne(const RequestFeeds& request) const
{
    return ServeBatch({&request})[0];
}

}  // namespace fathom::serving
