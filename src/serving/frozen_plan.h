/**
 * @file
 * FrozenPlan: an immutable, reentrant inference executable.
 *
 * The serving layer's answer to the Session split the ROADMAP calls
 * for: Session owns *mutable* training state (variables updated in
 * place, an RNG advanced by sampling ops, a tracer, plan caches), so a
 * Session cannot safely serve concurrent clients. Freeze() extracts
 * the inference-only subgraph reachable from a model's serving
 * fetches into a self-contained plan:
 *
 *  - The subgraph is copied into a private graph (the source session
 *    may keep training, be checkpointed, or be destroyed afterwards).
 *  - Stateful ops (random sampling, variable updates) are rejected:
 *    a frozen plan has no execution barriers, so every op-level
 *    dependency is a real data/control edge and requests run fully
 *    parallel.
 *  - Variable reads are snapshotted: each reachable Variable's tensor
 *    is deep-copied at freeze time and pre-bound into the plan
 *    (in-place optimizer updates on the source session can never leak
 *    into a frozen plan, and the per-step Variable-clone the training
 *    executor pays is not paid per request). Const values are
 *    immutable and shared by reference.
 *
 * After Freeze(), Run() is const and thread-safe: any number of
 * threads may execute the plan concurrently, each with its own value
 * workspace. Outputs are bit-identical across inter-op widths (pure
 * ops commute) and across runs (weights are frozen).
 */
#ifndef FATHOM_SERVING_FROZEN_PLAN_H
#define FATHOM_SERVING_FROZEN_PLAN_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/op_registry.h"
#include "parallel/thread_pool.h"
#include "runtime/session.h"
#include "tensor/tensor.h"

namespace fathom::serving {

/** Declared layout of one serving input: per-example, no batch dim. */
struct TensorSpec {
    std::string name;  ///< placeholder node name in the source graph.
    DType dtype = DType::kFloat32;
    /** Shape of ONE example; the serving batch dim is prepended. */
    std::vector<std::int64_t> example_dims;
};

/**
 * A model's servable endpoint, declared against its live session.
 *
 * `fixed_batch` handles graphs whose structure bakes in the batch size
 * (unrolled recurrence with constant initial state, explicit Tile or
 * Reshape by batch): 0 means the graph accepts any leading batch
 * dimension; a positive value means every execution must be padded to
 * exactly that many rows (the dynamic batcher pads short batches and
 * discards the padding rows on scatter).
 */
struct InferenceSignature {
    std::vector<TensorSpec> inputs;
    std::vector<graph::Output> fetches;     ///< in the source graph.
    std::vector<std::string> output_names;  ///< parallel to fetches.
    std::int64_t fixed_batch = 0;
};

/** Execution knobs fixed at freeze time (the plan stays immutable). */
struct FrozenPlanOptions {
    int intra_op_threads = 1;  ///< kernel-internal pool width.
    int inter_op_threads = 1;  ///< concurrent ops per execution.

    /**
     * Run the graph rewrite framework over the frozen subgraph (with
     * Variables treated as constants — weights are snapshotted, so
     * whole weight-only expressions fold at freeze time). On by
     * default; outputs are bit-identical either way.
     */
    bool optimize = true;

    /** Per-pattern knobs (effective when optimize is on). */
    graph::rewrite::RewriteOptions rewrites;

    /**
     * Statically verify the frozen plan (on by default): structure,
     * whole-graph shape/dtype inference seeded from the signature's
     * TensorSpecs (batch = fixed_batch, or 1 for batch-flexible
     * graphs), the in-place aliasing proof, and the frozen-mode
     * determinism lint. A violation throws std::invalid_argument with
     * the full diagnostic report.
     */
    bool verify = true;
};

/** Feeds for one single-example request: name -> [1, ...] tensor. */
using RequestFeeds = std::map<std::string, Tensor>;

class FrozenPlan {
  public:
    /**
     * Freezes the subgraph of @p session producing @p
     * signature.fetches.
     *
     * @throws std::invalid_argument if the subgraph contains a
     *         stateful op (sampling, variable update), if a reachable
     *         placeholder is not declared in the signature, or if a
     *         declared input is not a placeholder.
     */
    static std::shared_ptr<const FrozenPlan> Freeze(
        const runtime::Session& session, const InferenceSignature& signature,
        const FrozenPlanOptions& options = {});

    FrozenPlan(const FrozenPlan&) = delete;
    FrozenPlan& operator=(const FrozenPlan&) = delete;

    const InferenceSignature& signature() const { return signature_; }
    std::int64_t fixed_batch() const { return signature_.fixed_batch; }
    int inter_op_threads() const { return inter_op_threads_; }

    /** @return executable (non-source) op count, for introspection. */
    std::size_t num_steps() const { return steps_.size(); }

    /**
     * Executes the plan on batched feeds (name -> [B, ...] tensor).
     *
     * Thread-safe and reentrant: concurrent calls share only immutable
     * plan state, the buffer pool, and the (internally synchronized)
     * thread pool. @p batch must equal fixed_batch when one is set.
     *
     * @return the fetched tensors, in signature order.
     */
    std::vector<Tensor> Run(const std::map<std::string, Tensor>& feeds) const;

    /**
     * Serves a coalesced batch of single-example requests: stacks each
     * input along a new leading batch dimension (padding to
     * fixed_batch by replicating the first request when the graph
     * demands it), executes once, and slices each output row back to
     * its request.
     *
     * Per-request results are bit-identical to serving the request in
     * any other batch composition — the equivalence battery in
     * tests/test_serving.cc enforces this — because every op in a
     * frozen plan computes each batch row independently.
     *
     * @return per request, the fetched [1, ...] tensors in signature
     *         order.
     */
    std::vector<std::vector<Tensor>> ServeBatch(
        const std::vector<const RequestFeeds*>& requests) const;

    /** ServeBatch for a single request (the batch-size-1 baseline). */
    std::vector<Tensor> ServeOne(const RequestFeeds& request) const;

  private:
    FrozenPlan() = default;

    /** One executable entry: frozen-graph node + resolved op def. */
    struct Step {
        graph::NodeId node = -1;
        const graph::OpDef* def = nullptr;
        std::int32_t seq = -1;  ///< dense index into steps_.
    };

    /** Validates one batched feed tensor against its spec. */
    void CheckFeed(const TensorSpec& spec, const Tensor& value,
                   std::int64_t batch) const;

    /** Executes step @p seq into @p values (see session.cc). */
    void RunStep(std::size_t seq, std::vector<std::vector<Tensor>>& values) const;

    /** Decrements consumer counts; clears values that just died. */
    void ReleaseDead(std::size_t seq, std::atomic<std::int32_t>* remaining,
                     std::vector<std::vector<Tensor>>& values) const;

    /** Drains the dependency graph across @p width concurrent lanes. */
    void RunParallel(std::vector<std::vector<Tensor>>& values,
                     std::atomic<std::int32_t>* remaining) const;

    InferenceSignature signature_;
    graph::Graph graph_;  ///< private copy of the inference subgraph.
    /** Remapped fetch edges into graph_. */
    std::vector<graph::Output> fetches_;
    /** Input name -> frozen placeholder node. */
    std::map<std::string, graph::NodeId> input_nodes_;
    /** Weight/const values bound before execution (frozen node -> value). */
    std::vector<std::pair<graph::NodeId, Tensor>> prebound_;
    /** Rewrite edge redirection over the frozen graph (maybe empty). */
    std::unordered_map<graph::NodeId, graph::NodeId> replacements_;
    /** Values computed by freeze-time constant folding. */
    std::unordered_map<graph::NodeId, std::vector<Tensor>> folded_;
    /** Per step, in-place grant from the rewrite's liveness proof. */
    std::vector<char> step_inplace_;

    std::vector<Step> steps_;
    /** Per step, steps unblocked by its completion. */
    std::vector<std::vector<std::int32_t>> dependents_;
    /** Per step, dependency count (data+control edges on other steps). */
    std::vector<std::int32_t> initial_pending_;
    /** Per step, producer steps of its data inputs (liveness credit). */
    std::vector<std::vector<std::int32_t>> input_producers_;
    /** Per step, consumer-step count before its outputs die. */
    std::vector<std::int32_t> consumer_count_;
    /** Per step, whether its outputs may be dropped when dead. */
    std::vector<char> releasable_;

    int inter_op_threads_ = 1;
    /** Intra-op pool handed to kernels; width-1 pools run inline. */
    std::unique_ptr<parallel::ThreadPool> intra_pool_;
    /** Lane pool for inter-op execution; null when width is 1. */
    std::unique_ptr<parallel::ThreadPool> inter_pool_;
    /** Never drawn from (stateful ops are rejected); OpContext needs one. */
    mutable Rng rng_{0};
    /** Never touched by frozen kernels; OpContext needs one. */
    mutable graph::VariableStore empty_variables_;
};

}  // namespace fathom::serving

#endif  // FATHOM_SERVING_FROZEN_PLAN_H
