#include "serving/serving_runtime.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.h"

namespace fathom::serving {

namespace {

/** The serving metric family, resolved once (registry refs are stable). */
struct ServingMetrics {
    telemetry::Counter& requests;
    telemetry::Counter& responses;
    telemetry::Counter& rejected;
    telemetry::Counter& failed;
    telemetry::Counter& batches;
    telemetry::Counter& padded_rows;
    telemetry::Histogram& batch_size;
    telemetry::Histogram& queue_depth;
    telemetry::Histogram& queue_us;
    telemetry::Histogram& latency_us;

    static ServingMetrics& Get()
    {
        auto& reg = telemetry::MetricsRegistry::Global();
        static ServingMetrics m{
            reg.GetCounter("serving.requests"),
            reg.GetCounter("serving.responses"),
            reg.GetCounter("serving.rejected"),
            reg.GetCounter("serving.failed"),
            reg.GetCounter("serving.batches"),
            reg.GetCounter("serving.padded_rows"),
            reg.GetHistogram("serving.batch_size"),
            reg.GetHistogram("serving.queue_depth"),
            reg.GetHistogram("serving.queue_us"),
            reg.GetHistogram("serving.request_latency_us"),
        };
        return m;
    }
};

std::uint64_t
ElapsedMicros(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to)
{
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(to - from)
                  .count();
    return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

ServingRuntime::ServingRuntime(std::shared_ptr<const FrozenPlan> plan,
                               ServingOptions options)
    : plan_(std::move(plan)), options_(options)
{
    if (!plan_) {
        throw std::invalid_argument("ServingRuntime: null plan");
    }
    // A fixed-batch graph cannot execute more rows than it bakes in,
    // so larger requested batches would only add padding work.
    if (plan_->fixed_batch() > 0) {
        options_.max_batch =
            std::min(options_.max_batch, plan_->fixed_batch());
    }
    options_.max_batch = std::max<std::int64_t>(options_.max_batch, 1);
    options_.max_queue_depth = std::max<std::size_t>(
        options_.max_queue_depth, static_cast<std::size_t>(1));
    options_.executors = std::max(options_.executors, 1);

    executors_.reserve(static_cast<std::size_t>(options_.executors));
    for (int i = 0; i < options_.executors; ++i) {
        executors_.emplace_back([this] { ExecutorLoop(); });
    }
}

ServingRuntime::~ServingRuntime() { Stop(); }

std::future<InferenceResponse>
ServingRuntime::Submit(RequestFeeds feeds)
{
    auto& metrics = ServingMetrics::Get();

    // Validate against the signature before taking the queue lock:
    // malformed requests fail fast at the submitter and a formed batch
    // can only fail on execution errors, not on feed-shape errors
    // introduced by a co-batched stranger.
    for (const TensorSpec& spec : plan_->signature().inputs) {
        auto it = feeds.find(spec.name);
        if (it == feeds.end()) {
            metrics.rejected.Add();
            throw std::invalid_argument(
                "ServingRuntime::Submit: missing input '" + spec.name + "'");
        }
        const Tensor& value = it->second;
        if (!value.initialized() || value.dtype() != spec.dtype) {
            metrics.rejected.Add();
            throw std::invalid_argument(
                "ServingRuntime::Submit: input '" + spec.name +
                "' is empty or has the wrong dtype");
        }
        const auto& dims = value.shape().dims();
        bool ok = dims.size() == spec.example_dims.size() + 1 && dims[0] == 1;
        for (std::size_t d = 0; ok && d < spec.example_dims.size(); ++d) {
            ok = dims[d + 1] == spec.example_dims[d];
        }
        if (!ok) {
            metrics.rejected.Add();
            throw std::invalid_argument(
                "ServingRuntime::Submit: input '" + spec.name +
                "' has shape " + value.DebugString() +
                ", expected [1, example dims]");
        }
    }

    Pending request;
    request.feeds = std::move(feeds);
    request.enqueued = std::chrono::steady_clock::now();
    std::future<InferenceResponse> future = request.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
            metrics.rejected.Add();
            throw std::runtime_error(
                "ServingRuntime::Submit: runtime is stopped");
        }
        if (queue_.size() >= options_.max_queue_depth) {
            metrics.rejected.Add();
            throw std::runtime_error(
                "ServingRuntime::Submit: queue full (depth " +
                std::to_string(queue_.size()) + ")");
        }
        queue_.push_back(std::move(request));
        metrics.requests.Add();
        metrics.queue_depth.Observe(queue_.size());
    }
    cv_.notify_one();
    return future;
}

void
ServingRuntime::ExecutorLoop()
{
    const auto batch_target = static_cast<std::size_t>(options_.max_batch);
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping_ and fully drained.
            }
            // The dynamic-batching policy: launch as soon as a full
            // batch is waiting, or when the *oldest* queued request
            // exhausts its latency budget, or on shutdown (drain now).
            // The deadline re-derives from front() each wakeup —
            // another executor may have consumed our former oldest.
            while (!stopping_ && queue_.size() < batch_target) {
                auto deadline = queue_.front().enqueued +
                                options_.max_queue_delay;
                if (std::chrono::steady_clock::now() >= deadline) {
                    break;
                }
                cv_.wait_until(lock, deadline);
                if (queue_.empty()) {
                    break;  // raced with another executor; start over.
                }
            }
            if (queue_.empty()) {
                continue;
            }
            const std::size_t take = std::min(queue_.size(), batch_target);
            batch.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        // More work may remain (a burst larger than one batch, or a
        // drain with multiple batches queued); wake a sibling.
        cv_.notify_one();
        RunBatch(std::move(batch));
    }
}

void
ServingRuntime::RunBatch(std::vector<Pending> batch)
{
    auto& metrics = ServingMetrics::Get();
    const auto formed = std::chrono::steady_clock::now();
    const auto n = static_cast<std::int64_t>(batch.size());

    metrics.batches.Add();
    metrics.batch_size.Observe(static_cast<std::uint64_t>(n));
    if (plan_->fixed_batch() > 0 && n < plan_->fixed_batch()) {
        metrics.padded_rows.Add(
            static_cast<std::uint64_t>(plan_->fixed_batch() - n));
    }
    for (const Pending& p : batch) {
        metrics.queue_us.Observe(ElapsedMicros(p.enqueued, formed));
    }

    std::vector<const RequestFeeds*> requests;
    requests.reserve(batch.size());
    for (const Pending& p : batch) {
        requests.push_back(&p.feeds);
    }

    try {
        std::vector<std::vector<Tensor>> outputs = plan_->ServeBatch(requests);
        const auto done = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            InferenceResponse response;
            response.outputs = std::move(outputs[i]);
            response.batch_size = n;
            response.queue_seconds =
                static_cast<double>(ElapsedMicros(batch[i].enqueued, formed)) *
                1e-6;
            response.latency_seconds =
                static_cast<double>(ElapsedMicros(batch[i].enqueued, done)) *
                1e-6;
            metrics.latency_us.Observe(
                ElapsedMicros(batch[i].enqueued, done));
            metrics.responses.Add();
            batch[i].promise.set_value(std::move(response));
        }
    } catch (...) {
        // Never strand a caller: a failed batch fails every request in
        // it (the exception surfaces through each future's get()).
        metrics.failed.Add(static_cast<std::uint64_t>(batch.size()));
        for (Pending& p : batch) {
            p.promise.set_exception(std::current_exception());
        }
    }
}

void
ServingRuntime::Stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    // Joining is serialized so concurrent Stop()/destructor races are
    // safe; executors exit only once the queue is fully drained.
    std::lock_guard<std::mutex> join_lock(join_mu_);
    for (std::thread& t : executors_) {
        if (t.joinable()) {
            t.join();
        }
    }
}

bool
ServingRuntime::stopped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
}

}  // namespace fathom::serving
