#include "serving/serving_runtime.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "telemetry/metrics.h"

namespace fathom::serving {

namespace {

/** The serving metric family, resolved once (registry refs are stable). */
struct ServingMetrics {
    telemetry::Counter& requests;
    telemetry::Counter& responses;
    telemetry::Counter& rejected;
    telemetry::Counter& failed;
    telemetry::Counter& batches;
    telemetry::Counter& padded_rows;
    telemetry::Histogram& batch_size;
    telemetry::Histogram& queue_depth;
    telemetry::Histogram& queue_us;
    telemetry::Histogram& latency_us;

    static ServingMetrics& Get()
    {
        auto& reg = telemetry::MetricsRegistry::Global();
        static ServingMetrics m{
            reg.GetCounter("serving.requests"),
            reg.GetCounter("serving.responses"),
            reg.GetCounter("serving.rejected"),
            reg.GetCounter("serving.failed"),
            reg.GetCounter("serving.batches"),
            reg.GetCounter("serving.padded_rows"),
            reg.GetHistogram("serving.batch_size"),
            reg.GetHistogram("serving.queue_depth"),
            reg.GetHistogram("serving.queue_us"),
            reg.GetHistogram("serving.request_latency_us"),
        };
        return m;
    }
};

std::uint64_t
ElapsedMicros(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to)
{
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(to - from)
                  .count();
    return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

ServingOptions
ServingRuntime::Normalize(const FrozenPlan* plan, ServingOptions options)
{
    if (!plan) {
        throw std::invalid_argument("ServingRuntime: null plan");
    }
    // A fixed-batch graph cannot execute more rows than it bakes in,
    // so larger requested batches would only add padding work.
    if (plan->fixed_batch() > 0) {
        options.max_batch = std::min(options.max_batch, plan->fixed_batch());
    }
    options.max_batch = std::max<std::int64_t>(options.max_batch, 1);
    options.max_queue_depth = std::max<std::size_t>(
        options.max_queue_depth, static_cast<std::size_t>(1));
    options.executors = std::max(options.executors, 1);
    return options;
}

ServingRuntime::ServingRuntime(std::shared_ptr<const FrozenPlan> plan,
                               ServingOptions options)
    : plan_(std::move(plan)),
      options_(Normalize(plan_.get(), options)),
      queue_(options_.max_queue_depth)
{
    if (options_.tracer != nullptr) {
        lanes_.reserve(static_cast<std::size_t>(options_.executors));
        for (int i = 0; i < options_.executors; ++i) {
            lanes_.push_back(options_.tracer->RegisterAuxLane(
                "batcher-" + std::to_string(i)));
        }
    }
    executors_.reserve(static_cast<std::size_t>(options_.executors));
    for (int i = 0; i < options_.executors; ++i) {
        executors_.emplace_back([this, i] { ExecutorLoop(i); });
    }
}

ServingRuntime::~ServingRuntime() { Stop(); }

std::future<InferenceResponse>
ServingRuntime::Submit(RequestFeeds feeds)
{
    auto& metrics = ServingMetrics::Get();

    // Validate against the signature before touching the queue:
    // malformed requests fail fast at the submitter and a formed batch
    // can only fail on execution errors, not on feed-shape errors
    // introduced by a co-batched stranger.
    for (const TensorSpec& spec : plan_->signature().inputs) {
        auto it = feeds.find(spec.name);
        if (it == feeds.end()) {
            metrics.rejected.Add();
            throw std::invalid_argument(
                "ServingRuntime::Submit: missing input '" + spec.name + "'");
        }
        const Tensor& value = it->second;
        if (!value.initialized() || value.dtype() != spec.dtype) {
            metrics.rejected.Add();
            throw std::invalid_argument(
                "ServingRuntime::Submit: input '" + spec.name +
                "' is empty or has the wrong dtype");
        }
        const auto& dims = value.shape().dims();
        bool ok = dims.size() == spec.example_dims.size() + 1 && dims[0] == 1;
        for (std::size_t d = 0; ok && d < spec.example_dims.size(); ++d) {
            ok = dims[d + 1] == spec.example_dims[d];
        }
        if (!ok) {
            metrics.rejected.Add();
            throw std::invalid_argument(
                "ServingRuntime::Submit: input '" + spec.name +
                "' has shape " + value.DebugString() +
                ", expected [1, example dims]");
        }
    }

    Pending request;
    request.feeds = std::move(feeds);
    request.enqueued = std::chrono::steady_clock::now();
    std::future<InferenceResponse> future = request.promise.get_future();

    switch (queue_.TryPush(std::move(request))) {
        case data::QueuePushResult::kOk:
            break;
        case data::QueuePushResult::kStopped:
            metrics.rejected.Add();
            throw std::runtime_error(
                "ServingRuntime::Submit: runtime is stopped");
        case data::QueuePushResult::kFull:
            metrics.rejected.Add();
            throw std::runtime_error(
                "ServingRuntime::Submit: queue full (depth " +
                std::to_string(queue_.size()) + ")");
    }
    metrics.requests.Add();
    metrics.queue_depth.Observe(queue_.size());
    return future;
}

void
ServingRuntime::ExecutorLoop(int worker)
{
    const auto batch_target = static_cast<std::size_t>(options_.max_batch);
    const bool traced = options_.tracer != nullptr &&
                        static_cast<std::size_t>(worker) < lanes_.size();
    std::vector<Pending> batch;
    // PopBatch is the dynamic-batching policy: it returns a formed
    // batch as soon as batch_target requests are waiting, or when the
    // oldest has exhausted its latency budget; after Stop() it drains
    // batch by batch and finally reports false.
    while (queue_.PopBatch(batch_target, options_.max_queue_delay, &batch)) {
        const double start = traced ? options_.tracer->NowSeconds() : 0.0;
        const auto n = batch.size();
        RunBatch(std::move(batch));
        if (traced) {
            options_.tracer->RecordAux(
                lanes_[static_cast<std::size_t>(worker)],
                "batch x" + std::to_string(n), start,
                options_.tracer->NowSeconds() - start);
        }
    }
}

void
ServingRuntime::RunBatch(std::vector<Pending> batch)
{
    auto& metrics = ServingMetrics::Get();
    const auto formed = std::chrono::steady_clock::now();
    const auto n = static_cast<std::int64_t>(batch.size());

    metrics.batches.Add();
    metrics.batch_size.Observe(static_cast<std::uint64_t>(n));
    if (plan_->fixed_batch() > 0 && n < plan_->fixed_batch()) {
        metrics.padded_rows.Add(
            static_cast<std::uint64_t>(plan_->fixed_batch() - n));
    }
    for (const Pending& p : batch) {
        metrics.queue_us.Observe(ElapsedMicros(p.enqueued, formed));
    }

    std::vector<const RequestFeeds*> requests;
    requests.reserve(batch.size());
    for (const Pending& p : batch) {
        requests.push_back(&p.feeds);
    }

    try {
        std::vector<std::vector<Tensor>> outputs = plan_->ServeBatch(requests);
        const auto done = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            InferenceResponse response;
            response.outputs = std::move(outputs[i]);
            response.batch_size = n;
            response.queue_seconds =
                static_cast<double>(ElapsedMicros(batch[i].enqueued, formed)) *
                1e-6;
            response.latency_seconds =
                static_cast<double>(ElapsedMicros(batch[i].enqueued, done)) *
                1e-6;
            metrics.latency_us.Observe(
                ElapsedMicros(batch[i].enqueued, done));
            metrics.responses.Add();
            batch[i].promise.set_value(std::move(response));
        }
    } catch (...) {
        // Never strand a caller: a failed batch fails every request in
        // it (the exception surfaces through each future's get()).
        metrics.failed.Add(static_cast<std::uint64_t>(batch.size()));
        for (Pending& p : batch) {
            p.promise.set_exception(std::current_exception());
        }
    }
}

void
ServingRuntime::Stop()
{
    queue_.Stop();
    // Joining is serialized so concurrent Stop()/destructor races are
    // safe; executors exit only once the queue is fully drained.
    std::lock_guard<std::mutex> join_lock(join_mu_);
    for (std::thread& t : executors_) {
        if (t.joinable()) {
            t.join();
        }
    }
}

}  // namespace fathom::serving
