/**
 * @file
 * ServingRuntime: a multi-client inference front-end over a shared
 * FrozenPlan.
 *
 * The runtime is the piece the ROADMAP's "millions of users" north
 * star needs between clients and the executor: clients Submit()
 * single-example requests from any thread and get a future; executor
 * threads coalesce queued requests into batched tensors under a
 * latency budget (TensorFlow-Serving's dynamic batching policy:
 * launch when `max_batch` requests are waiting OR the oldest request
 * has waited `max_queue_delay`), execute the frozen plan once per
 * formed batch, and scatter the batched outputs back to per-request
 * futures.
 *
 * The batcher rides on data::BoundedQueue — the same bounded
 * stop/drain queue under the training input pipeline — whose
 * PopBatch() implements the dynamic-batching policy directly.
 *
 * Shutdown contract (enforced by a timeout-guarded test): Stop() and
 * the destructor reject new submissions and then *drain* — every
 * request accepted before the stop completes (or fails with its
 * execution error); no caller is ever left blocked on a future.
 */
#ifndef FATHOM_SERVING_SERVING_RUNTIME_H
#define FATHOM_SERVING_SERVING_RUNTIME_H

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/pipeline/bounded_queue.h"
#include "runtime/tracer.h"
#include "serving/frozen_plan.h"

namespace fathom::serving {

/** Dynamic-batching and capacity knobs. */
struct ServingOptions {
    /**
     * Largest coalesced batch. Clamped to the plan's fixed batch when
     * the frozen graph bakes one in. 1 disables batching (the
     * baseline configuration bench_serving compares against).
     */
    std::int64_t max_batch = 8;

    /**
     * Latency budget of the batcher: the longest a queued request may
     * wait for co-batching before an executor launches a partial
     * batch. 0 launches immediately (batches only form under bursts).
     */
    std::chrono::microseconds max_queue_delay{2000};

    /** Bounded-queue capacity; Submit() rejects above it. */
    std::size_t max_queue_depth = 1024;

    /** Executor threads forming and running batches. */
    int executors = 1;

    /**
     * Optional tracer for batcher lanes: each executor registers a
     * "batcher-k" aux lane and records one span per formed batch, so
     * Chrome traces show the batchers as labeled threads. Must
     * outlive the runtime when set.
     */
    runtime::Tracer* tracer = nullptr;
};

/** What a fulfilled request future resolves to. */
struct InferenceResponse {
    /** Fetched [1, ...] tensors, in signature output order. */
    std::vector<Tensor> outputs;
    std::int64_t batch_size = 0;     ///< formed batch it rode in.
    double queue_seconds = 0.0;      ///< submit -> batch formation.
    double latency_seconds = 0.0;    ///< submit -> completion.
};

class ServingRuntime {
  public:
    ServingRuntime(std::shared_ptr<const FrozenPlan> plan,
                   ServingOptions options = {});

    /** Drains and joins (see Stop()). */
    ~ServingRuntime();

    ServingRuntime(const ServingRuntime&) = delete;
    ServingRuntime& operator=(const ServingRuntime&) = delete;

    const ServingOptions& options() const { return options_; }
    const FrozenPlan& plan() const { return *plan_; }

    /**
     * Enqueues one single-example request (name -> [1, ...] tensor).
     *
     * Thread-safe. Validates the feeds against the plan signature
     * before accepting.
     *
     * @throws std::runtime_error if the runtime is stopped or the
     *         bounded queue is full (backpressure — the caller sheds
     *         or retries; an accepted request is always resolved).
     */
    std::future<InferenceResponse> Submit(RequestFeeds feeds);

    /**
     * Stops accepting work, serves every already-accepted request,
     * and joins the executors. Idempotent; safe to race with
     * Submit() from other threads.
     */
    void Stop();

    bool stopped() const { return queue_.stopped(); }

  private:
    struct Pending {
        RequestFeeds feeds;
        std::promise<InferenceResponse> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    /** Clamps the knobs (and validates @p plan) before queue_ init. */
    static ServingOptions Normalize(const FrozenPlan* plan,
                                    ServingOptions options);

    void ExecutorLoop(int worker);

    /** Runs one formed batch and settles its promises. */
    void RunBatch(std::vector<Pending> batch);

    std::shared_ptr<const FrozenPlan> plan_;
    ServingOptions options_;

    /** Request queue; PopBatch is the dynamic-batching policy. */
    data::BoundedQueue<Pending> queue_;

    /** Per-executor tracer aux lane ids (empty without a tracer). */
    std::vector<int> lanes_;

    std::mutex join_mu_;  ///< serializes Stop()/~ServingRuntime joins.
    std::vector<std::thread> executors_;
};

}  // namespace fathom::serving

#endif  // FATHOM_SERVING_SERVING_RUNTIME_H
